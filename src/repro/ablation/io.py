"""Load :class:`~repro.ablation.spec.AblationSpec` from TOML or JSON files.

Every failure mode — unreadable file, parse error, unknown top-level key,
missing required field, malformed axes or objectives — is reported as a
:class:`~repro.exceptions.ConfigurationError` that names the offending key
and file, so ``repro-experiments ablate --spec bad.toml`` fails with a
actionable message instead of a traceback from deep inside the parser.
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path
from typing import Any, Mapping, Union

from repro.ablation.spec import AblationSpec
from repro.exceptions import ConfigurationError

__all__ = ["load_spec", "spec_from_mapping"]

#: Keys a spec document may define, mapped onto AblationSpec fields.
_SPEC_KEYS = (
    "name",
    "experiment",
    "preset",
    "base",
    "axes",
    "strategy",
    "sample_count",
    "sample_seed",
    "budget",
    "metrics",
    "objectives",
)


def load_spec(path: Union[str, Path]) -> AblationSpec:
    """Parse one study spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in (".toml", ".json"):
        raise ConfigurationError(
            f"spec file {path} has unsupported suffix {suffix or '(none)'!r}; "
            "use .toml or .json"
        )
    try:
        raw_bytes = path.read_bytes()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file {path}: {exc}") from exc
    try:
        if suffix == ".toml":
            document = tomllib.loads(raw_bytes.decode("utf-8"))
        else:
            document = json.loads(raw_bytes.decode("utf-8"))
    except (tomllib.TOMLDecodeError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ConfigurationError(f"spec file {path} failed to parse: {exc}") from exc
    if not isinstance(document, Mapping):
        raise ConfigurationError(
            f"spec file {path} must contain a table/object at top level, "
            f"got {type(document).__name__}"
        )
    return spec_from_mapping(document, source=str(path))


def spec_from_mapping(document: Mapping[str, Any], source: str = "<spec>") -> AblationSpec:
    """Build a validated spec from an already-parsed mapping."""
    unknown = sorted(set(document) - set(_SPEC_KEYS))
    if unknown:
        raise ConfigurationError(
            f"spec {source} has unknown key {unknown[0]!r}; "
            "valid keys: " + ", ".join(_SPEC_KEYS)
        )
    for required in ("name", "experiment"):
        if required not in document:
            raise ConfigurationError(f"spec {source} is missing required key {required!r}")
        if not isinstance(document[required], str) or not document[required]:
            raise ConfigurationError(
                f"spec {source} key {required!r} must be a non-empty string"
            )

    kwargs: dict = {"name": document["name"], "experiment": document["experiment"]}
    for key in ("preset", "strategy"):
        if key in document:
            value = document[key]
            if not isinstance(value, str):
                raise ConfigurationError(f"spec {source} key {key!r} must be a string")
            kwargs[key] = value
    for key in ("sample_count", "sample_seed", "budget"):
        if key in document:
            value = document[key]
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(f"spec {source} key {key!r} must be an integer")
            kwargs[key] = value
    for key in ("base", "axes"):
        if key in document:
            value = document[key]
            if not isinstance(value, Mapping):
                raise ConfigurationError(
                    f"spec {source} key {key!r} must be a table/object of "
                    "config-field entries"
                )
            kwargs[key] = dict(value)
    if "metrics" in document:
        metrics = document["metrics"]
        if not isinstance(metrics, (list, tuple)) or not all(
            isinstance(item, str) for item in metrics
        ):
            raise ConfigurationError(
                f"spec {source} key 'metrics' must be a list of metric names"
            )
        kwargs["metrics"] = tuple(metrics)
    if "objectives" in document:
        kwargs["objectives"] = _parse_objectives(document["objectives"], source)

    return AblationSpec(**kwargs)


def _parse_objectives(raw: Any, source: str) -> tuple:
    """Objectives: list of ``[metric, direction]`` pairs or a name->direction table."""
    if isinstance(raw, Mapping):
        return tuple((str(metric), direction) for metric, direction in raw.items())
    if isinstance(raw, (list, tuple)):
        pairs = []
        for entry in raw:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not all(isinstance(part, str) for part in entry)
            ):
                raise ConfigurationError(
                    f"spec {source} key 'objectives' entries must be "
                    f"[metric, direction] string pairs, got {entry!r}"
                )
            pairs.append((entry[0], entry[1]))
        return tuple(pairs)
    raise ConfigurationError(
        f"spec {source} key 'objectives' must be a list of [metric, direction] "
        "pairs or a metric -> direction table"
    )
