"""Pareto-front computation over study-point metrics.

The front is computed under weak domination: point *a* dominates point *b*
when *a* is at least as good on every objective and strictly better on at
least one (after orienting each objective by its ``min``/``max`` direction).
Consequences the test suite pins down:

* a single-point study's front is that point;
* ties — points with identical objective vectors — dominate nobody and are
  *all* kept on the front (dropping one of two equally good tradeoffs would
  be arbitrary);
* points with a missing or non-finite (NaN/inf) objective metric are
  **excluded** from the comparison rather than poisoning it, each exclusion
  raising a structured :class:`ParetoExclusionWarning` and a log record.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

from repro.ablation.spec import OBJECTIVE_DIRECTIONS
from repro.exceptions import ConfigurationError
from repro.telemetry.log import get_logger

__all__ = ["ParetoExclusion", "ParetoExclusionWarning", "pareto_front"]

_log = get_logger(__name__)


class ParetoExclusionWarning(UserWarning):
    """A study point was left out of the Pareto front (bad objective metric)."""


@dataclass(frozen=True)
class ParetoExclusion:
    """Why one point could not participate in the front."""

    point_id: str
    metric: str
    value: str
    reason: str  # "missing" or "non-finite"

    def message(self) -> str:
        return (
            f"study point {self.point_id} excluded from the Pareto front: "
            f"objective metric {self.metric!r} is {self.reason} ({self.value})"
        )


def pareto_front(
    metric_maps: Sequence[Mapping[str, float]],
    objectives: Sequence[Tuple[str, str]],
    point_ids: Sequence[str],
) -> Tuple[List[int], List[ParetoExclusion]]:
    """Return (front indices, exclusions) for the given objective set.

    ``metric_maps[i]`` holds point ``i``'s scalar metrics and ``point_ids[i]``
    its display identity (used in warnings).  Front indices come back sorted
    ascending; exclusions in point order, one per bad point (its first bad
    metric, in objective order).
    """
    if not objectives:
        raise ConfigurationError("pareto_front requires at least one objective")
    for metric, direction in objectives:
        if direction not in OBJECTIVE_DIRECTIONS:
            raise ConfigurationError(
                f"objective {metric!r} has unknown direction {direction!r}; "
                "valid directions: " + ", ".join(OBJECTIVE_DIRECTIONS)
            )
    if len(metric_maps) != len(point_ids):
        raise ConfigurationError(
            f"{len(metric_maps)} metric maps but {len(point_ids)} point ids"
        )

    vectors: List[Tuple[float, ...]] = []
    candidates: List[int] = []
    exclusions: List[ParetoExclusion] = []
    for index, metrics in enumerate(metric_maps):
        vector: List[float] = []
        bad: ParetoExclusion | None = None
        for metric, direction in objectives:
            if metric not in metrics:
                bad = ParetoExclusion(str(point_ids[index]), metric, "absent", "missing")
                break
            value = float(metrics[metric])
            if not math.isfinite(value):
                bad = ParetoExclusion(str(point_ids[index]), metric, repr(value), "non-finite")
                break
            vector.append(value if direction == "min" else -value)
        if bad is not None:
            exclusions.append(bad)
            warnings.warn(ParetoExclusionWarning(bad.message()), stacklevel=2)
            _log.warning(
                "pareto.point_excluded",
                point=bad.point_id,
                metric=bad.metric,
                reason=bad.reason,
                value=bad.value,
            )
        else:
            vectors.append(tuple(vector))
            candidates.append(index)

    front: List[int] = []
    for i, vec_i in zip(candidates, vectors):
        dominated = any(
            all(a <= b for a, b in zip(vec_j, vec_i))
            and any(a < b for a, b in zip(vec_j, vec_i))
            for j, vec_j in zip(candidates, vectors)
            if j != i
        )
        if not dominated:
            front.append(i)
    return front, exclusions
