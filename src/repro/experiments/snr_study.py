"""Extension experiment E-X1: detection quality vs SNR under AWGN.

The paper's prototype experiments exclude wireless noise (Sec. 4.2), but any
deployable receiver must operate across an SNR range.  This extension study
sweeps SNR on a small MIMO uplink and compares the bit error rate of the
linear detectors (zero-forcing, MMSE) against the hybrid Greedy Search +
reverse annealing detector, exercising the noisy end of the wireless substrate
(AWGN generation, MMSE regularisation, QUBO construction from noisy received
vectors) end-to-end.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.classical.mmse import MMSEDetector
from repro.classical.zero_forcing import ZeroForcingDetector
from repro.exceptions import ConfigurationError
from repro.experiments.driver import ExperimentDriver, run_driver
from repro import telemetry
from repro.hybrid.solver import HybridMIMODetector
from repro.parallel import ResultCache, ShardTask
from repro.telemetry.log import get_logger
from repro.transform.mimo_to_qubo import mimo_to_qubo
from repro.utils.batching import iter_batches
from repro.utils.rng import ensure_rng, stable_seed
from repro.wireless.channel import RayleighFadingChannel
from repro.wireless.metrics import bit_error_rate
from repro.wireless.mimo import MIMOConfig, simulate_transmission

_log = get_logger(__name__)

__all__ = [
    "SNRStudyConfig",
    "SNRStudyDriver",
    "SNRStudyRow",
    "snr_study_tasks",
    "run_snr_study",
    "format_snr_table",
]


@dataclass(frozen=True)
class SNRStudyConfig:
    """Configuration of the SNR sweep.

    Attributes
    ----------
    num_users, num_receive_antennas, modulation:
        Link configuration; the default 2x6 QPSK link keeps the exhaustive
        reference tractable while leaving the linear detectors imperfect at
        low SNR.
    snr_grid_db:
        SNR points swept.
    channel_uses_per_point:
        Independent channel uses averaged per SNR point.
    num_reads:
        Reverse-annealing reads for the hybrid detector.
    batch_size:
        Channel uses per batched hybrid-detector submission; ``None`` submits
        every channel use of an SNR point as one batch.  Per-channel-use
        child generators keep the BER results identical for every grouping.
    """

    num_users: int = 2
    num_receive_antennas: int = 6
    modulation: str = "QPSK"
    snr_grid_db: Tuple[float, ...] = (0.0, 6.0, 12.0, 18.0)
    channel_uses_per_point: int = 6
    num_reads: int = 100
    switch_s: float = 0.45
    base_seed: int = 0
    batch_size: Optional[int] = None

    @classmethod
    def quick(cls) -> "SNRStudyConfig":
        """A minimal configuration used by the test suite."""
        return cls(snr_grid_db=(0.0, 18.0), channel_uses_per_point=2, num_reads=40)


@dataclass(frozen=True)
class SNRStudyRow:
    """Average BER of each detector at one SNR point."""

    snr_db: float
    channel_uses: int
    zero_forcing_ber: float
    mmse_ber: float
    hybrid_ber: float


def _snr_point(
    config: SNRStudyConfig, snr_db: float, annealer: QuantumAnnealerSimulator
) -> SNRStudyRow:
    """Average the detectors' BERs over the channel uses of one SNR point.

    Every channel use is seeded by its own explicit child
    (``stable_seed("snr-use", snr_db, index, base_seed)``), so points are
    independent of each other and of execution order.
    """
    zero_forcing = ZeroForcingDetector()
    channel_model = RayleighFadingChannel()
    mimo_config = MIMOConfig(
        num_users=config.num_users,
        modulation=config.modulation,
        num_receive_antennas=config.num_receive_antennas,
        snr_db=float(snr_db),
    )
    mmse = MMSEDetector(noise_variance=mimo_config.noise_variance)
    hybrid = HybridMIMODetector(
        sampler=annealer,
        switch_s=config.switch_s,
        num_reads=config.num_reads,
    )

    zf_errors: List[float] = []
    mmse_errors: List[float] = []
    hybrid_errors: List[float] = []

    seeds = [
        stable_seed("snr-use", snr_db, index, config.base_seed)
        for index in range(config.channel_uses_per_point)
    ]
    transmissions = [
        simulate_transmission(mimo_config, channel_model, seed) for seed in seeds
    ]
    encodings = [mimo_to_qubo(transmission.instance) for transmission in transmissions]

    # Linear detectors run per channel use (they are closed-form and
    # essentially free); the hybrid detector is submitted in batches.
    for transmission, encoding in zip(transmissions, encodings):
        zf_bits = encoding.payload_bits(
            encoding.symbols_to_bits(zero_forcing.detect(transmission.instance))
        )
        zf_errors.append(bit_error_rate(transmission.transmitted_bits, zf_bits))

        mmse_bits = encoding.payload_bits(
            encoding.symbols_to_bits(mmse.detect(transmission.instance))
        )
        mmse_errors.append(bit_error_rate(transmission.transmitted_bits, mmse_bits))

    for start, chunk in iter_batches(transmissions, config.batch_size):
        detections = hybrid.detect_batch(
            [transmission.instance for transmission in chunk],
            # One explicit generator per channel use (seeded exactly as
            # the sequential per-use path would be), so results do not
            # depend on the batch grouping.
            rng=[ensure_rng(seed + 1) for seed in seeds[start : start + len(chunk)]],
        )
        for transmission, detection in zip(chunk, detections):
            hybrid_errors.append(
                bit_error_rate(transmission.transmitted_bits, detection.bits)
            )

    return SNRStudyRow(
        snr_db=float(snr_db),
        channel_uses=config.channel_uses_per_point,
        zero_forcing_ber=float(np.mean(zf_errors)),
        mmse_ber=float(np.mean(mmse_errors)),
        hybrid_ber=float(np.mean(hybrid_errors)),
    )


def _snr_point_shard(
    config: SNRStudyConfig, batch_size: Optional[int] = None
) -> SNRStudyRow:
    """One SNR-point shard; ``config.snr_grid_db`` holds exactly the point.

    ``batch_size`` arrives outside the fingerprinted config (results are
    proven batch-size-invariant, so the cache key must not depend on it).
    """
    if len(config.snr_grid_db) != 1:
        raise ConfigurationError(
            f"an SNR shard sweeps exactly one point, got {config.snr_grid_db!r}"
        )
    config = dataclasses.replace(config, batch_size=batch_size)
    annealer = QuantumAnnealerSimulator(seed=stable_seed("snr-study", config.base_seed))
    return _snr_point(config, float(config.snr_grid_db[0]), annealer)


def snr_study_tasks(config: SNRStudyConfig) -> List[ShardTask]:
    """The sweep's shard list: one task per SNR grid point.

    Each task's configuration is restricted to its own point, so adding or
    changing one grid point recomputes only that point on a cached re-run;
    the batch-size-invariant ``batch_size`` travels outside the fingerprint.
    """
    return [
        ShardTask(
            key=("snr-study", float(snr_db)),
            fn=_snr_point_shard,
            kwargs={
                "config": dataclasses.replace(
                    config, snr_grid_db=(float(snr_db),), batch_size=None
                ),
                "batch_size": config.batch_size,
            },
            fingerprint_exclude=("batch_size",),
        )
        for snr_db in config.snr_grid_db
    ]


class SNRStudyDriver(ExperimentDriver):
    """The BER-vs-SNR sweep behind the shared experiment-driver protocol."""

    name = "snr"

    def tasks(self, config: SNRStudyConfig) -> List[ShardTask]:
        return snr_study_tasks(config)

    def aggregate(
        self, config: SNRStudyConfig, results: Sequence[SNRStudyRow]
    ) -> List[SNRStudyRow]:
        return list(results)

    def progress(self, config, tasks, results) -> None:
        for row in results:
            telemetry.emit_progress("snr-study", row.snr_db, hybrid_ber=row.hybrid_ber)


def run_snr_study(
    config: SNRStudyConfig = SNRStudyConfig(),
    sampler: Optional[QuantumAnnealerSimulator] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[SNRStudyRow]:
    """Sweep SNR and return one row of averaged BERs per SNR point.

    ``workers`` shards the grid across a process pool (results are
    bitwise-identical to the serial path at any worker count) and ``cache``
    reuses point results across runs; see :mod:`repro.parallel`.  A custom
    ``sampler`` pins the study to the calling process (live simulator objects
    cannot be shipped to pool workers), so it runs serially and uncached.
    """
    if sampler is not None:
        return [_snr_point(config, float(snr_db), sampler) for snr_db in config.snr_grid_db]
    _log.info("snr_study.start", points=len(config.snr_grid_db), workers=workers or 1)
    return run_driver(SNRStudyDriver(), config, workers=workers, cache=cache)


def format_snr_table(rows: Sequence[SNRStudyRow]) -> str:
    """Render the SNR sweep as an aligned text table."""
    lines = [
        "Extension - BER vs SNR under AWGN (Rayleigh fading uplink)",
        f"{'SNR (dB)':>8}  {'uses':>5}  {'ZF BER':>7}  {'MMSE BER':>8}  {'hybrid BER':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.snr_db:>8.1f}  {row.channel_uses:>5}  {row.zero_forcing_ber:>7.3f}  "
            f"{row.mmse_ber:>8.3f}  {row.hybrid_ber:>10.3f}"
        )
    return "\n".join(lines)
