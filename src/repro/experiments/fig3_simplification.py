"""Experiment E-F3: QUBO simplification by variable prefixing (paper Figure 3).

The paper tests the classical pre-processing scheme of Section 3.1 on random
MIMO-detection QUBOs of growing size and all four modulations, reporting two
series per modulation:

* (left panel)  the fraction of instances in which *any* variable could be
  fixed ("ratio of simplified QUBOs");
* (right panel) the average number of fixed variables among the simplified
  instances.

The paper's empirical finding — the scheme achieves nearly no effect for
problems over 32-40 variables, regardless of modulation — is the shape this
experiment reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.instances import synthesize_instance, variables_for
from repro.qubo.preprocessing import simplify_qubo

__all__ = ["Figure3Config", "Figure3Row", "run_figure3", "format_figure3_table"]


@dataclass(frozen=True)
class Figure3Config:
    """Configuration of the Figure 3 reproduction.

    Attributes
    ----------
    instances_per_point:
        Instances synthesized per (size, modulation) point (the paper uses 50).
    user_counts:
        Users per modulation, as a mapping from modulation name to the list of
        user counts to test.  The default sweeps problem sizes from a handful
        of variables up to ~64, covering the 32-40 variable cliff the paper
        highlights.
    base_seed:
        Seed offset for instance synthesis.
    """

    instances_per_point: int = 10
    user_counts: Dict[str, Tuple[int, ...]] = field(
        default_factory=lambda: {
            "BPSK": (4, 8, 16, 24, 32, 40, 48, 64),
            "QPSK": (2, 4, 8, 12, 16, 20, 24, 32),
            "16-QAM": (1, 2, 4, 6, 8, 10, 12, 16),
            "64-QAM": (1, 2, 4, 6, 8, 10),
        }
    )
    base_seed: int = 0

    @classmethod
    def paper_scale(cls) -> "Figure3Config":
        """The configuration matching the paper's 50 instances per point."""
        return cls(instances_per_point=50)


@dataclass(frozen=True)
class Figure3Row:
    """One point of Figure 3: a (modulation, problem size) pair."""

    modulation: str
    num_users: int
    num_variables: int
    instances: int
    simplified_ratio: float
    average_fixed_variables: float


def run_figure3(config: Figure3Config = Figure3Config()) -> List[Figure3Row]:
    """Run the preprocessing study and return one row per (modulation, size)."""
    rows: List[Figure3Row] = []
    for modulation, user_counts in config.user_counts.items():
        for num_users in user_counts:
            simplified = 0
            fixed_counts: List[int] = []
            for index in range(config.instances_per_point):
                bundle = synthesize_instance(
                    num_users,
                    modulation,
                    seed=config.base_seed + index,
                )
                report = simplify_qubo(bundle.encoding.qubo)
                if report.was_simplified:
                    simplified += 1
                    fixed_counts.append(report.num_fixed)
            ratio = simplified / config.instances_per_point
            average_fixed = float(np.mean(fixed_counts)) if fixed_counts else 0.0
            rows.append(
                Figure3Row(
                    modulation=modulation,
                    num_users=num_users,
                    num_variables=variables_for(num_users, modulation),
                    instances=config.instances_per_point,
                    simplified_ratio=ratio,
                    average_fixed_variables=average_fixed,
                )
            )
    return rows


def format_figure3_table(rows: Sequence[Figure3Row]) -> str:
    """Render the Figure 3 series as an aligned text table."""
    lines = [
        "Figure 3 - QUBO simplification by variable prefixing",
        f"{'modulation':>10}  {'users':>5}  {'vars':>4}  {'simplified ratio':>16}  "
        f"{'avg fixed vars':>14}",
    ]
    for row in rows:
        lines.append(
            f"{row.modulation:>10}  {row.num_users:>5}  {row.num_variables:>4}  "
            f"{row.simplified_ratio:>16.2f}  {row.average_fixed_variables:>14.2f}"
        )
    return "\n".join(lines)
