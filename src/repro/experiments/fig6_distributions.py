"""Experiment E-F6: ΔE% sample distributions for FA / RA(random) / RA(GS).

Paper Figure 6 shows, for 36-variable decoding problems of every modulation,
the distribution of the quality percentile ΔE% over all anneal samples for
three solver flavours:

* forward annealing (the QuAMax baseline),
* reverse annealing initialised from a *random* state,
* reverse annealing initialised from the Greedy Search solution (the paper's
  hybrid prototype).

The headline shape: the GS-initialised distribution is concentrated at low
ΔE% (best), the randomly-initialised one is skewed toward high ΔE% (worst),
and forward annealing sits in between.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.classical.greedy import GreedySearchSolver
from repro.experiments.instances import (
    instance_qubos,
    iter_batches,
    paper_figure6_configurations,
    synthesize_instances,
)
from repro.experiments.driver import ExperimentDriver, run_driver
from repro.metrics.quality import delta_e_distribution
from repro.metrics.statistics import histogram_percentiles
from repro import telemetry
from repro.parallel import ResultCache, ShardTask
from repro.telemetry.log import get_logger
from repro.utils.rng import spawn_rngs, stable_seed

_log = get_logger(__name__)

__all__ = [
    "Figure6Config",
    "Figure6Driver",
    "Figure6Series",
    "figure6_tasks",
    "run_figure6",
    "format_figure6_table",
]

#: The three solver flavours compared by Figure 6.
METHODS = ("FA", "RA-random", "RA-greedy")


@dataclass(frozen=True)
class Figure6Config:
    """Configuration of the Figure 6 reproduction.

    Attributes
    ----------
    num_variables:
        Problem size in QUBO variables (36 in the paper).
    instances_per_modulation:
        Independent instances per modulation (20 in the paper).
    num_reads:
        Anneal reads per instance and method (200,000-600,000 in aggregate in
        the paper; the default here keeps laptop runtimes reasonable while
        preserving the distribution shapes).
    switch_s:
        Pause / switch location used for all three methods.  The paper uses
        each method's "median best parameter setting"; this reproduction uses
        one shared location chosen from the hybrid's best band on 36-variable
        problems under the simulator (0.57).  See EXPERIMENTS.md for the
        sensitivity of the Figure 6 ordering to this choice.
    bin_edges:
        ΔE% histogram bins.
    batch_size:
        Instances per batched annealer submission; ``None`` submits all
        instances of a modulation as one batch.  Child generators per
        instance keep the results identical for every grouping.
    """

    num_variables: int = 36
    instances_per_modulation: int = 2
    num_reads: int = 300
    switch_s: float = 0.57
    pause_duration_us: float = 1.0
    anneal_time_us: float = 1.0
    bin_edges: Tuple[float, ...] = (0.0, 2.0, 5.0, 10.0, 20.0, 40.0, 70.0, 100.0, 1e9)
    base_seed: int = 0
    modulations: Optional[Tuple[str, ...]] = None
    batch_size: Optional[int] = None

    @classmethod
    def paper_scale(cls) -> "Figure6Config":
        """Instance and read counts approaching the paper's protocol."""
        return cls(instances_per_modulation=20, num_reads=10_000)

    @classmethod
    def quick(cls) -> "Figure6Config":
        """A minimal configuration used by the test suite."""
        return cls(
            num_variables=12,
            instances_per_modulation=1,
            num_reads=100,
            modulations=("QPSK", "16-QAM"),
        )


@dataclass(frozen=True)
class Figure6Series:
    """The ΔE% distribution of one (modulation, method) pair."""

    modulation: str
    num_users: int
    method: str
    num_samples: int
    mean_delta_e: float
    median_delta_e: float
    ground_state_fraction: float
    histogram: Tuple[float, ...]
    bin_edges: Tuple[float, ...]


def _figure6_configuration(
    config: Figure6Config,
    num_users: int,
    modulation: str,
    annealer: QuantumAnnealerSimulator,
) -> List[Figure6Series]:
    """Run the three-method comparison for one (num_users, modulation) pair.

    All anneal randomness flows through children spawned from
    ``stable_seed("fig6-anneal", method, modulation, num_users, base_seed)``,
    so configurations are mutually independent: sharding the figure across
    processes cannot change a single sample.
    """
    greedy = GreedySearchSolver()
    bundles = synthesize_instances(
        config.instances_per_modulation,
        num_users,
        modulation,
        base_seed=config.base_seed,
    )
    per_method: Dict[str, List[np.ndarray]] = {method: [] for method in METHODS}

    qubos = instance_qubos(bundles)
    grounds = [bundle.ground_energy for bundle in bundles]
    # Each instance draws a distinct random initial state (the seed-era
    # driver reused one state per modulation, which made the RA(random)
    # series an average over identical runs rather than random states).
    state_rng = np.random.default_rng(
        stable_seed("fig6-instance", modulation, num_users, config.base_seed)
    )
    random_states = [state_rng.integers(0, 2, qubo.num_variables) for qubo in qubos]
    greedy_solutions = greedy.solve_batch(qubos)

    # One anneal child generator per (method, instance), spawned up front:
    # chunked submissions receive slices of the same children, so results
    # are identical for every batch_size.
    method_children = {
        method: spawn_rngs(
            stable_seed("fig6-anneal", method, modulation, num_users, config.base_seed),
            len(qubos),
        )
        for method in METHODS
    }

    # Each method's reads for every instance of the modulation go through
    # the annealer as (chunked) batched submissions instead of a loop.
    for start, chunk_qubos in iter_batches(qubos, config.batch_size):
        stop = start + len(chunk_qubos)
        chunk_grounds = grounds[start:stop]

        fa_sets = annealer.forward_anneal_batch(
            chunk_qubos,
            num_reads=config.num_reads,
            anneal_time_us=config.anneal_time_us,
            pause_s=config.switch_s,
            pause_duration_us=config.pause_duration_us,
            rng=method_children["FA"][start:stop],
        )
        ra_random_sets = annealer.reverse_anneal_batch(
            chunk_qubos,
            random_states[start:stop],
            switch_s=config.switch_s,
            num_reads=config.num_reads,
            pause_duration_us=config.pause_duration_us,
            rng=method_children["RA-random"][start:stop],
        )
        ra_greedy_sets = annealer.reverse_anneal_batch(
            chunk_qubos,
            [solution.assignment for solution in greedy_solutions[start:stop]],
            switch_s=config.switch_s,
            num_reads=config.num_reads,
            pause_duration_us=config.pause_duration_us,
            rng=method_children["RA-greedy"][start:stop],
        )
        for ground, fa, ra_random, ra_greedy in zip(
            chunk_grounds, fa_sets, ra_random_sets, ra_greedy_sets
        ):
            per_method["FA"].append(delta_e_distribution(fa, ground))
            per_method["RA-random"].append(delta_e_distribution(ra_random, ground))
            per_method["RA-greedy"].append(delta_e_distribution(ra_greedy, ground))

    series: List[Figure6Series] = []
    for method in METHODS:
        samples = np.concatenate(per_method[method])
        histogram = histogram_percentiles(samples, config.bin_edges)
        series.append(
            Figure6Series(
                modulation=modulation,
                num_users=num_users,
                method=method,
                num_samples=int(samples.size),
                mean_delta_e=float(np.mean(samples)),
                median_delta_e=float(np.median(samples)),
                ground_state_fraction=float(np.mean(samples <= 1e-6)),
                histogram=tuple(float(value) for value in histogram),
                bin_edges=config.bin_edges,
            )
        )
    return series


def _figure6_shard(
    config: Figure6Config,
    num_users: int,
    modulation: str,
    batch_size: Optional[int] = None,
) -> List[Figure6Series]:
    """One (num_users, modulation) shard of the figure.

    ``batch_size`` arrives outside the fingerprinted config (results are
    proven batch-size-invariant, so the cache key must not depend on it).
    """
    config = dataclasses.replace(config, batch_size=batch_size)
    annealer = QuantumAnnealerSimulator(seed=stable_seed("fig6", config.base_seed))
    return _figure6_configuration(config, num_users, modulation, annealer)


def _selected_configurations(config: Figure6Config) -> List[Tuple[int, str]]:
    configurations = paper_figure6_configurations(config.num_variables)
    if config.modulations is not None:
        configurations = [
            (users, modulation)
            for users, modulation in configurations
            if modulation in config.modulations
        ]
    return configurations


def figure6_tasks(config: Figure6Config) -> List[ShardTask]:
    """The figure's shard list: one task per (num_users, modulation) pair.

    The per-shard configuration normalises the ``modulations`` filter away
    (the shard is already pinned to one modulation), so changing which
    modulations a run sweeps re-keys only the added or removed pairs; the
    batch-size-invariant ``batch_size`` travels outside the fingerprint so
    re-chunking a sweep never recomputes it.
    """
    shard_config = dataclasses.replace(config, modulations=None, batch_size=None)
    return [
        ShardTask(
            key=("fig6", modulation, num_users),
            fn=_figure6_shard,
            kwargs={
                "config": shard_config,
                "num_users": num_users,
                "modulation": modulation,
                "batch_size": config.batch_size,
            },
            fingerprint_exclude=("batch_size",),
        )
        for num_users, modulation in _selected_configurations(config)
    ]


class Figure6Driver(ExperimentDriver):
    """Figure 6 behind the shared experiment-driver protocol."""

    name = "fig6"

    def tasks(self, config: Figure6Config) -> List[ShardTask]:
        return figure6_tasks(config)

    def aggregate(
        self, config: Figure6Config, results: Sequence[List[Figure6Series]]
    ) -> List[Figure6Series]:
        return [entry for shard in results for entry in shard]

    def progress(self, config, tasks, results) -> None:
        for task, shard in zip(tasks, results):
            telemetry.emit_progress("fig6", task.key[1:], series=len(shard))


def run_figure6(
    config: Figure6Config = Figure6Config(),
    sampler: Optional[QuantumAnnealerSimulator] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Figure6Series]:
    """Run the distribution comparison and return one series per (modulation, method).

    ``workers`` shards the modulation grid across a process pool (results are
    bitwise-identical to the serial path at any worker count) and ``cache``
    reuses shard results across runs; see :mod:`repro.parallel`.  A custom
    ``sampler`` pins the run to the calling process (serial, uncached).
    """
    if sampler is not None:
        return [
            entry
            for num_users, modulation in _selected_configurations(config)
            for entry in _figure6_configuration(config, num_users, modulation, sampler)
        ]
    _log.info("fig6.start", shards=len(figure6_tasks(config)), workers=workers or 1)
    return run_driver(Figure6Driver(), config, workers=workers, cache=cache)


def format_figure6_table(series: Sequence[Figure6Series]) -> str:
    """Render the Figure 6 summary as an aligned text table."""
    lines = [
        "Figure 6 - Delta-E% distribution over anneal samples",
        f"{'modulation':>10}  {'method':>10}  {'samples':>8}  {'mean dE%':>9}  "
        f"{'median dE%':>10}  {'P(ground)':>9}",
    ]
    for row in series:
        lines.append(
            f"{row.modulation:>10}  {row.method:>10}  {row.num_samples:>8}  "
            f"{row.mean_delta_e:>9.2f}  {row.median_delta_e:>10.2f}  "
            f"{row.ground_state_fraction:>9.3f}"
        )
    return "\n".join(lines)
