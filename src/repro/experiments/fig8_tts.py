"""Experiment E-F8: success probability and TTS vs s_p (paper Figure 8).

For one 8-user 16-QAM decoding instance the paper sweeps the switch/pause
location s_p from 0.25 to 0.99 (in 0.04 steps) and reports, for every
annealing flavour, the ground-state probability p* and the time-to-solution
TTS(99%):

* FA — forward annealing with a pause at s_p;
* FR — forward-reverse annealing, c_p chosen by oracle search;
* RA(GS) — reverse annealing initialised with the Greedy Search solution;
* RA(ground) — reverse annealing initialised with the ground state itself
  (the red dashed reference line);
* RA(ΔE_IS%) — reverse annealing initialised with candidates of intermediate
  quality.

The qualitative findings to reproduce: RA succeeds over a *band* of s_p values
(roughly 0.33-0.49 on hardware), collapses when s_p is too small (the initial
state is wiped out) or too large (fluctuations too weak to repair it), and its
best TTS beats FA's by a sizeable factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.classical.greedy import GreedySearchSolver
from repro.experiments.instances import InstanceBundle, synthesize_instance
from repro.hybrid.parameters import (
    SwitchPointRecord,
    sweep_forward_reverse_turning_point,
    sweep_switch_point_batch,
)
from repro.metrics.quality import delta_e_percent
from repro.utils.rng import stable_seed

__all__ = ["Figure8Config", "Figure8Row", "run_figure8", "format_figure8_table"]


@dataclass(frozen=True)
class Figure8Config:
    """Configuration of the Figure 8 reproduction.

    Attributes
    ----------
    num_users, modulation:
        Instance configuration (8-user 16-QAM in the paper).
    switch_values:
        The s_p grid; ``None`` selects a reduced grid spanning the paper's
        0.25-0.99 range.
    num_reads:
        Anneal reads per (method, s_p) point (at least 10,000 in the paper).
    include_fr_oracle:
        Whether to run the FR turning-point oracle search (the most expensive
        part of the sweep).
    intermediate_initial_quality:
        Target ΔE_IS% of the "intermediate quality" RA series (paper's dotted
        yellow lines); ``None`` disables that series.
    instance_seed:
        Which synthetic instance to sweep.  Mirroring the paper — which
        presents "one typical 8-user 16-QAM detection instance" and calls its
        results illustrative — the default seed selects a typical instance in
        which the greedy initial state is configurationally close to the
        optimum; the instance-to-instance spread is documented in
        EXPERIMENTS.md.
    """

    num_users: int = 8
    modulation: str = "16-QAM"
    switch_values: Optional[Tuple[float, ...]] = None
    num_reads: int = 300
    pause_duration_us: float = 1.0
    anneal_time_us: float = 1.0
    confidence_percent: float = 99.0
    include_fr_oracle: bool = True
    intermediate_initial_quality: Optional[float] = 6.0
    instance_seed: int = 12
    base_seed: int = 0

    @classmethod
    def paper_scale(cls) -> "Figure8Config":
        """The full 0.25-0.99 grid in 0.04 steps with 10,000 reads per point."""
        grid = tuple(np.round(np.arange(0.25, 0.99 + 1e-9, 0.04), 4))
        return cls(switch_values=grid, num_reads=10_000)

    @classmethod
    def quick(cls) -> "Figure8Config":
        """A minimal configuration used by the test suite."""
        return cls(
            num_users=3,
            switch_values=(0.33, 0.49, 0.81),
            num_reads=80,
            include_fr_oracle=False,
            intermediate_initial_quality=None,
        )

    def grid(self) -> Tuple[float, ...]:
        """The s_p values actually swept."""
        if self.switch_values is not None:
            return self.switch_values
        return (0.25, 0.33, 0.41, 0.49, 0.57, 0.65, 0.73, 0.81, 0.89, 0.97)


@dataclass(frozen=True)
class Figure8Row:
    """One (method, s_p) point of Figure 8."""

    method: str
    switch_s: float
    success_probability: float
    tts_us: float
    duration_us: float
    initial_quality_percent: Optional[float] = None
    turning_s: Optional[float] = None


def _rows_from_records(
    method: str,
    records: Sequence[SwitchPointRecord],
    initial_quality: Optional[float] = None,
) -> List[Figure8Row]:
    return [
        Figure8Row(
            method=method,
            switch_s=record.switch_s,
            success_probability=record.success_probability,
            tts_us=record.tts.tts_us,
            duration_us=record.duration_us,
            initial_quality_percent=initial_quality,
            turning_s=record.turning_s,
        )
        for record in records
    ]


def _candidate_with_quality(
    bundle: InstanceBundle, target_percent: float, rng: np.random.Generator, attempts: int = 4000
) -> Optional[np.ndarray]:
    """Find an initial state whose ΔE_IS% is close to ``target_percent``."""
    qubo = bundle.encoding.qubo
    best_candidate: Optional[np.ndarray] = None
    best_gap = np.inf
    for _ in range(attempts):
        candidate = bundle.ground_state.copy()
        num_flips = int(rng.integers(1, max(2, qubo.num_variables // 4)))
        flips = rng.choice(qubo.num_variables, size=num_flips, replace=False)
        candidate[flips] = 1 - candidate[flips]
        quality = delta_e_percent(qubo.energy(candidate), bundle.ground_energy)
        gap = abs(quality - target_percent)
        if gap < best_gap:
            best_gap = gap
            best_candidate = candidate
        if gap < 0.5:
            break
    return best_candidate


def run_figure8(
    config: Figure8Config = Figure8Config(),
    sampler: Optional[QuantumAnnealerSimulator] = None,
    bundle: Optional[InstanceBundle] = None,
) -> List[Figure8Row]:
    """Run the s_p sweep for every method and return all (method, s_p) rows."""
    instance = bundle if bundle is not None else synthesize_instance(
        config.num_users, config.modulation, seed=config.instance_seed
    )
    annealer = sampler if sampler is not None else QuantumAnnealerSimulator(
        seed=stable_seed("fig8", config.base_seed)
    )
    rng = np.random.default_rng(stable_seed("fig8-candidates", config.base_seed))
    qubo = instance.encoding.qubo
    ground_energy = instance.ground_energy
    grid = config.grid()

    rows: List[Figure8Row] = []

    # Forward annealing baseline (a batch of one keeps the code path uniform).
    fa_records = sweep_switch_point_batch(
        [qubo],
        [ground_energy],
        method="FA",
        switch_values=grid,
        sampler=annealer,
        num_reads=config.num_reads,
        pause_duration_us=config.pause_duration_us,
        anneal_time_us=config.anneal_time_us,
        confidence_percent=config.confidence_percent,
        rng=stable_seed("fig8-fa", config.base_seed),
    )[0]
    rows.extend(_rows_from_records("FA", fa_records))

    # The whole reverse-annealing family — greedy candidate (the hybrid
    # prototype), exact ground state (reference line) and optionally an
    # intermediate-quality candidate — shares the RA schedule at every s_p,
    # so each grid point is one batched submission across the variants.
    greedy_solution = GreedySearchSolver().solve(qubo)
    greedy_quality = delta_e_percent(greedy_solution.energy, ground_energy)
    ra_labels: List[str] = ["RA-greedy", "RA-ground"]
    ra_qualities: List[float] = [greedy_quality, 0.0]
    ra_initial_states: List[np.ndarray] = [greedy_solution.assignment, instance.ground_state]

    if config.intermediate_initial_quality is not None:
        candidate = _candidate_with_quality(instance, config.intermediate_initial_quality, rng)
        if candidate is not None:
            ra_labels.append("RA-intermediate")
            ra_qualities.append(delta_e_percent(qubo.energy(candidate), ground_energy))
            ra_initial_states.append(candidate)

    ra_results = sweep_switch_point_batch(
        [qubo] * len(ra_labels),
        [ground_energy] * len(ra_labels),
        method="RA",
        switch_values=grid,
        initial_states=ra_initial_states,
        sampler=annealer,
        num_reads=config.num_reads,
        pause_duration_us=config.pause_duration_us,
        confidence_percent=config.confidence_percent,
        rng=stable_seed("fig8-ra", config.base_seed),
    )
    for label, quality, records in zip(ra_labels, ra_qualities, ra_results):
        rows.extend(_rows_from_records(label, records, quality))

    # Forward-reverse annealing with the oracle turning point.
    if config.include_fr_oracle:
        for switch_s in grid:
            fr_records = sweep_forward_reverse_turning_point(
                qubo,
                ground_energy,
                switch_s=float(switch_s),
                turning_values=tuple(
                    value for value in (0.45, 0.6, 0.75, 0.9) if value >= switch_s
                ),
                sampler=annealer,
                num_reads=config.num_reads,
                pause_duration_us=config.pause_duration_us,
                anneal_time_us=config.anneal_time_us,
                confidence_percent=config.confidence_percent,
                rng=stable_seed("fig8-fr", config.base_seed, float(switch_s)),
            )
            if not fr_records:
                continue
            best = max(fr_records, key=lambda record: record.success_probability)
            rows.extend(_rows_from_records("FR-oracle", [best]))

    return rows


def format_figure8_table(rows: Sequence[Figure8Row]) -> str:
    """Render the Figure 8 sweep as an aligned text table."""
    lines = [
        "Figure 8 - success probability and TTS(99%) vs switch/pause location s_p",
        f"{'method':>16}  {'s_p':>5}  {'p*':>7}  {'TTS (us)':>12}  {'duration (us)':>13}  {'dE_IS%':>7}",
    ]
    for row in sorted(rows, key=lambda item: (item.method, item.switch_s)):
        tts_text = f"{row.tts_us:.1f}" if np.isfinite(row.tts_us) else "inf"
        quality_text = (
            f"{row.initial_quality_percent:.1f}"
            if row.initial_quality_percent is not None
            else "-"
        )
        lines.append(
            f"{row.method:>16}  {row.switch_s:>5.2f}  {row.success_probability:>7.3f}  "
            f"{tts_text:>12}  {row.duration_us:>13.2f}  {quality_text:>7}"
        )
    return "\n".join(lines)
