"""Experiment E-F8: success probability and TTS vs s_p (paper Figure 8).

For one 8-user 16-QAM decoding instance the paper sweeps the switch/pause
location s_p from 0.25 to 0.99 (in 0.04 steps) and reports, for every
annealing flavour, the ground-state probability p* and the time-to-solution
TTS(99%):

* FA — forward annealing with a pause at s_p;
* FR — forward-reverse annealing, c_p chosen by oracle search;
* RA(GS) — reverse annealing initialised with the Greedy Search solution;
* RA(ground) — reverse annealing initialised with the ground state itself
  (the red dashed reference line);
* RA(ΔE_IS%) — reverse annealing initialised with candidates of intermediate
  quality.

The qualitative findings to reproduce: RA succeeds over a *band* of s_p values
(roughly 0.33-0.49 on hardware), collapses when s_p is too small (the initial
state is wiped out) or too large (fluctuations too weak to repair it), and its
best TTS beats FA's by a sizeable factor.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.classical.greedy import GreedySearchSolver
from repro.experiments.driver import (
    ExperimentDriver,
    finite_min_or_nan,
    mean_or_nan,
    run_driver,
)
from repro.experiments.instances import InstanceBundle, synthesize_instance
from repro.hybrid.parameters import (
    SwitchPointRecord,
    sweep_forward_reverse_turning_point,
    sweep_switch_point_batch,
)
from repro.metrics.quality import delta_e_percent
from repro import telemetry
from repro.parallel import ResultCache, ShardTask
from repro.telemetry.log import get_logger
from repro.utils.rng import stable_seed

_log = get_logger(__name__)

__all__ = [
    "FIG8_METRICS",
    "Figure8Config",
    "Figure8Driver",
    "Figure8Row",
    "figure8_tasks",
    "run_figure8",
    "format_figure8_table",
]

#: Scalar metric columns of the fig8 ablation target, in declaration order.
FIG8_METRICS = (
    "success_probability_max",
    "fa_tts_us_min",
    "ra_greedy_tts_us_min",
    "tts_speedup",
    "duration_us_mean",
)


@dataclass(frozen=True)
class Figure8Config:
    """Configuration of the Figure 8 reproduction.

    Attributes
    ----------
    num_users, modulation:
        Instance configuration (8-user 16-QAM in the paper).
    switch_values:
        The s_p grid; ``None`` selects a reduced grid spanning the paper's
        0.25-0.99 range.
    num_reads:
        Anneal reads per (method, s_p) point (at least 10,000 in the paper).
    include_fr_oracle:
        Whether to run the FR turning-point oracle search (the most expensive
        part of the sweep).
    intermediate_initial_quality:
        Target ΔE_IS% of the "intermediate quality" RA series (paper's dotted
        yellow lines); ``None`` disables that series.
    instance_seed:
        Which synthetic instance to sweep.  Mirroring the paper — which
        presents "one typical 8-user 16-QAM detection instance" and calls its
        results illustrative — the default seed selects a typical instance in
        which the greedy initial state is configurationally close to the
        optimum; the instance-to-instance spread is documented in
        EXPERIMENTS.md.
    """

    num_users: int = 8
    modulation: str = "16-QAM"
    switch_values: Optional[Tuple[float, ...]] = None
    num_reads: int = 300
    pause_duration_us: float = 1.0
    anneal_time_us: float = 1.0
    confidence_percent: float = 99.0
    include_fr_oracle: bool = True
    intermediate_initial_quality: Optional[float] = 6.0
    instance_seed: int = 12
    base_seed: int = 0

    @classmethod
    def paper_scale(cls) -> "Figure8Config":
        """The full 0.25-0.99 grid in 0.04 steps with 10,000 reads per point."""
        grid = tuple(np.round(np.arange(0.25, 0.99 + 1e-9, 0.04), 4))
        return cls(switch_values=grid, num_reads=10_000)

    @classmethod
    def quick(cls) -> "Figure8Config":
        """A minimal configuration used by the test suite."""
        return cls(
            num_users=3,
            switch_values=(0.33, 0.49, 0.81),
            num_reads=80,
            include_fr_oracle=False,
            intermediate_initial_quality=None,
        )

    def grid(self) -> Tuple[float, ...]:
        """The s_p values actually swept."""
        if self.switch_values is not None:
            return self.switch_values
        return (0.25, 0.33, 0.41, 0.49, 0.57, 0.65, 0.73, 0.81, 0.89, 0.97)


@dataclass(frozen=True)
class Figure8Row:
    """One (method, s_p) point of Figure 8."""

    method: str
    switch_s: float
    success_probability: float
    tts_us: float
    duration_us: float
    initial_quality_percent: Optional[float] = None
    turning_s: Optional[float] = None


def _rows_from_records(
    method: str,
    records: Sequence[SwitchPointRecord],
    initial_quality: Optional[float] = None,
) -> List[Figure8Row]:
    return [
        Figure8Row(
            method=method,
            switch_s=record.switch_s,
            success_probability=record.success_probability,
            tts_us=record.tts.tts_us,
            duration_us=record.duration_us,
            initial_quality_percent=initial_quality,
            turning_s=record.turning_s,
        )
        for record in records
    ]


def _candidate_with_quality(
    bundle: InstanceBundle, target_percent: float, rng: np.random.Generator, attempts: int = 4000
) -> Optional[np.ndarray]:
    """Find an initial state whose ΔE_IS% is close to ``target_percent``."""
    qubo = bundle.encoding.qubo
    best_candidate: Optional[np.ndarray] = None
    best_gap = np.inf
    for _ in range(attempts):
        candidate = bundle.ground_state.copy()
        num_flips = int(rng.integers(1, max(2, qubo.num_variables // 4)))
        flips = rng.choice(qubo.num_variables, size=num_flips, replace=False)
        candidate[flips] = 1 - candidate[flips]
        quality = delta_e_percent(qubo.energy(candidate), bundle.ground_energy)
        gap = abs(quality - target_percent)
        if gap < best_gap:
            best_gap = gap
            best_candidate = candidate
        if gap < 0.5:
            break
    return best_candidate


def _instance_for(config: Figure8Config) -> InstanceBundle:
    return synthesize_instance(
        config.num_users, config.modulation, seed=config.instance_seed
    )


def _fa_rows(
    config: Figure8Config,
    instance: InstanceBundle,
    annealer: QuantumAnnealerSimulator,
) -> List[Figure8Row]:
    """Forward annealing baseline (a batch of one keeps the code path uniform)."""
    fa_records = sweep_switch_point_batch(
        [instance.encoding.qubo],
        [instance.ground_energy],
        method="FA",
        switch_values=config.grid(),
        sampler=annealer,
        num_reads=config.num_reads,
        pause_duration_us=config.pause_duration_us,
        anneal_time_us=config.anneal_time_us,
        confidence_percent=config.confidence_percent,
        rng=stable_seed("fig8-fa", config.base_seed),
    )[0]
    return _rows_from_records("FA", fa_records)


def _ra_rows(
    config: Figure8Config,
    instance: InstanceBundle,
    annealer: QuantumAnnealerSimulator,
) -> List[Figure8Row]:
    """The whole reverse-annealing family as one batched sweep.

    Greedy candidate (the hybrid prototype), exact ground state (reference
    line) and optionally an intermediate-quality candidate share the RA
    schedule at every s_p, so each grid point is one batched submission
    across the variants.
    """
    qubo = instance.encoding.qubo
    ground_energy = instance.ground_energy
    greedy_solution = GreedySearchSolver().solve(qubo)
    greedy_quality = delta_e_percent(greedy_solution.energy, ground_energy)
    ra_labels: List[str] = ["RA-greedy", "RA-ground"]
    ra_qualities: List[float] = [greedy_quality, 0.0]
    ra_initial_states: List[np.ndarray] = [greedy_solution.assignment, instance.ground_state]

    if config.intermediate_initial_quality is not None:
        rng = np.random.default_rng(stable_seed("fig8-candidates", config.base_seed))
        candidate = _candidate_with_quality(instance, config.intermediate_initial_quality, rng)
        if candidate is not None:
            ra_labels.append("RA-intermediate")
            ra_qualities.append(delta_e_percent(qubo.energy(candidate), ground_energy))
            ra_initial_states.append(candidate)

    ra_results = sweep_switch_point_batch(
        [qubo] * len(ra_labels),
        [ground_energy] * len(ra_labels),
        method="RA",
        switch_values=config.grid(),
        initial_states=ra_initial_states,
        sampler=annealer,
        num_reads=config.num_reads,
        pause_duration_us=config.pause_duration_us,
        confidence_percent=config.confidence_percent,
        rng=stable_seed("fig8-ra", config.base_seed),
    )
    rows: List[Figure8Row] = []
    for label, quality, records in zip(ra_labels, ra_qualities, ra_results):
        rows.extend(_rows_from_records(label, records, quality))
    return rows


def _fr_rows(
    config: Figure8Config,
    instance: InstanceBundle,
    annealer: QuantumAnnealerSimulator,
    switch_s: float,
) -> List[Figure8Row]:
    """Forward-reverse annealing with the oracle turning point at one s_p."""
    fr_records = sweep_forward_reverse_turning_point(
        instance.encoding.qubo,
        instance.ground_energy,
        switch_s=float(switch_s),
        turning_values=tuple(
            value for value in (0.45, 0.6, 0.75, 0.9) if value >= switch_s
        ),
        sampler=annealer,
        num_reads=config.num_reads,
        pause_duration_us=config.pause_duration_us,
        anneal_time_us=config.anneal_time_us,
        confidence_percent=config.confidence_percent,
        rng=stable_seed("fig8-fr", config.base_seed, float(switch_s)),
    )
    if not fr_records:
        return []
    best = max(fr_records, key=lambda record: record.success_probability)
    return _rows_from_records("FR-oracle", [best])


def _figure8_fa_shard(config: Figure8Config) -> List[Figure8Row]:
    """The FA sweep as one shard (its child seeds span the whole grid)."""
    annealer = QuantumAnnealerSimulator(seed=stable_seed("fig8", config.base_seed))
    return _fa_rows(config, _instance_for(config), annealer)


def _figure8_ra_shard(config: Figure8Config) -> List[Figure8Row]:
    """The RA family sweep as one shard (one batched child per variant)."""
    annealer = QuantumAnnealerSimulator(seed=stable_seed("fig8", config.base_seed))
    return _ra_rows(config, _instance_for(config), annealer)


def _figure8_fr_shard(config: Figure8Config, switch_s: float) -> List[Figure8Row]:
    """One FR-oracle grid point; its seed depends only on (base_seed, s_p)."""
    annealer = QuantumAnnealerSimulator(seed=stable_seed("fig8", config.base_seed))
    return _fr_rows(config, _instance_for(config), annealer, switch_s)


def figure8_tasks(config: Figure8Config) -> List[ShardTask]:
    """The figure's shard list: FA sweep, RA family, one task per FR point.

    The FA and RA sweeps consume their child generators *across* the grid
    (splitting them would change which reads each point draws), so each runs
    as one shard; the FR oracle is seeded per grid point and shards freely.
    Each shard's configuration normalises away the knobs its method never
    reads (the RA-only ``intermediate_initial_quality``, the task-list-level
    ``include_fr_oracle``, and for FR the grid), so toggling one method's
    knob re-keys only that method's shards in the cache.
    """
    fa_config = dataclasses.replace(
        config, include_fr_oracle=False, intermediate_initial_quality=None
    )
    ra_config = dataclasses.replace(config, include_fr_oracle=False)
    tasks = [
        ShardTask(key=("fig8", "fa"), fn=_figure8_fa_shard, kwargs={"config": fa_config}),
        ShardTask(key=("fig8", "ra"), fn=_figure8_ra_shard, kwargs={"config": ra_config}),
    ]
    if config.include_fr_oracle:
        fr_config = dataclasses.replace(
            config, switch_values=None, intermediate_initial_quality=None
        )
        tasks.extend(
            ShardTask(
                key=("fig8", "fr", float(switch_s)),
                fn=_figure8_fr_shard,
                kwargs={"config": fr_config, "switch_s": float(switch_s)},
            )
            for switch_s in config.grid()
        )
    return tasks


class Figure8Driver(ExperimentDriver):
    """Figure 8 behind the shared experiment-driver protocol."""

    name = "fig8"
    metric_names = FIG8_METRICS

    def tasks(self, config: Figure8Config) -> List[ShardTask]:
        return figure8_tasks(config)

    def aggregate(
        self, config: Figure8Config, results: Sequence[List[Figure8Row]]
    ) -> List[Figure8Row]:
        return [row for shard in results for row in shard]

    def metrics(self, rows: Sequence[Figure8Row]) -> Tuple[Tuple[str, float], ...]:
        fa_tts = finite_min_or_nan([row.tts_us for row in rows if row.method == "FA"])
        ra_tts = finite_min_or_nan(
            [row.tts_us for row in rows if row.method == "RA-greedy"]
        )
        if math.isfinite(fa_tts) and math.isfinite(ra_tts) and ra_tts > 0:
            speedup = fa_tts / ra_tts
        else:
            speedup = float("nan")
        return (
            (
                "success_probability_max",
                max((row.success_probability for row in rows), default=float("nan")),
            ),
            ("fa_tts_us_min", fa_tts),
            ("ra_greedy_tts_us_min", ra_tts),
            ("tts_speedup", speedup),
            ("duration_us_mean", mean_or_nan([row.duration_us for row in rows])),
        )

    def progress(self, config, tasks, results) -> None:
        for task, shard in zip(tasks, results):
            telemetry.emit_progress("fig8", task.key[1:], rows=len(shard))


def run_figure8(
    config: Figure8Config = Figure8Config(),
    sampler: Optional[QuantumAnnealerSimulator] = None,
    bundle: Optional[InstanceBundle] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Figure8Row]:
    """Run the s_p sweep for every method and return all (method, s_p) rows.

    ``workers`` shards the sweep (FA, RA family, each FR oracle point) across
    a process pool — results are bitwise-identical to the serial path at any
    worker count — and ``cache`` reuses shard results across runs; see
    :mod:`repro.parallel`.  A custom ``sampler`` or ``bundle`` pins the run
    to the calling process (serial, uncached).
    """
    if sampler is not None or bundle is not None:
        instance = bundle if bundle is not None else _instance_for(config)
        annealer = sampler if sampler is not None else QuantumAnnealerSimulator(
            seed=stable_seed("fig8", config.base_seed)
        )
        rows = _fa_rows(config, instance, annealer)
        rows.extend(_ra_rows(config, instance, annealer))
        if config.include_fr_oracle:
            for switch_s in config.grid():
                rows.extend(_fr_rows(config, instance, annealer, switch_s))
        return rows

    _log.info("fig8.start", shards=len(figure8_tasks(config)), workers=workers or 1)
    return run_driver(Figure8Driver(), config, workers=workers, cache=cache)


def format_figure8_table(rows: Sequence[Figure8Row]) -> str:
    """Render the Figure 8 sweep as an aligned text table."""
    lines = [
        "Figure 8 - success probability and TTS(99%) vs switch/pause location s_p",
        f"{'method':>16}  {'s_p':>5}  {'p*':>7}  {'TTS (us)':>12}  {'duration (us)':>13}  "
        f"{'dE_IS%':>7}",
    ]
    for row in sorted(rows, key=lambda item: (item.method, item.switch_s)):
        tts_text = f"{row.tts_us:.1f}" if np.isfinite(row.tts_us) else "inf"
        quality_text = (
            f"{row.initial_quality_percent:.1f}"
            if row.initial_quality_percent is not None
            else "-"
        )
        lines.append(
            f"{row.method:>16}  {row.switch_s:>5.2f}  {row.success_probability:>7.3f}  "
            f"{tts_text:>12}  {row.duration_us:>13.2f}  {quality_text:>7}"
        )
    return "\n".join(lines)
