"""Experiment E-HL: the paper's headline claim.

Abstract / Section 1: the GS + reverse-annealing hybrid achieves
"approximately 2-10x better performance in terms of processing time than
prior published results" (the forward-annealing QuAMax baseline), and "for an
eight-user, 16-QAM detection/decoding problem, our version of RA achieves
approximately up to 10x higher success probability than the previously
published results for FA."

This experiment runs both methods over the s_p grid on the same instances,
takes each method's *best* operating point (the comparison the abstract
makes), and reports the p* and TTS ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.classical.greedy import GreedySearchSolver
from repro.experiments.instances import synthesize_instance
from repro.hybrid.parameters import best_switch_point, sweep_switch_point_batch
from repro.utils.rng import stable_seed

__all__ = ["HeadlineConfig", "HeadlineResult", "run_headline", "format_headline_report"]


@dataclass(frozen=True)
class HeadlineConfig:
    """Configuration of the headline-speedup experiment.

    Attributes
    ----------
    num_users, modulation:
        Instance configuration (the abstract's 8-user 16-QAM example).
    instance_seeds:
        Seeds of the instances compared.  The paper reports "a single typical
        problem instance" and notes its results are "mostly illustrative"; the
        default seed selects such a typical instance (one where the greedy
        initial state lies configurationally close to the optimum, which is
        the regime reverse annealing exploits).  Instance-to-instance
        variability is large — EXPERIMENTS.md reports the spread over random
        seeds alongside this default.
    switch_values:
        s_p grid searched for each method's best operating point.
    num_reads:
        Anneal reads per (instance, method, s_p) point.
    """

    num_users: int = 8
    modulation: str = "16-QAM"
    instance_seeds: Tuple[int, ...] = (12,)
    switch_values: Tuple[float, ...] = (0.33, 0.41, 0.49, 0.57, 0.65)
    num_reads: int = 400
    pause_duration_us: float = 1.0
    anneal_time_us: float = 1.0
    base_seed: int = 0

    @classmethod
    def paper_scale(cls) -> "HeadlineConfig":
        """Larger grid and read counts for a higher-fidelity estimate."""
        grid = tuple(np.round(np.arange(0.25, 0.99 + 1e-9, 0.04), 4))
        return cls(instance_seeds=tuple(range(10)), switch_values=grid, num_reads=5_000)

    @classmethod
    def quick(cls) -> "HeadlineConfig":
        """A minimal configuration used by the test suite."""
        return cls(num_users=3, instance_seeds=(0,), switch_values=(0.41, 0.49), num_reads=100)


@dataclass(frozen=True)
class HeadlineResult:
    """Per-instance and aggregate comparison of RA(GS) against FA."""

    instance_labels: Tuple[str, ...]
    fa_best_success: Tuple[float, ...]
    ra_best_success: Tuple[float, ...]
    fa_best_tts_us: Tuple[float, ...]
    ra_best_tts_us: Tuple[float, ...]
    fa_best_switch: Tuple[float, ...]
    ra_best_switch: Tuple[float, ...]

    @property
    def success_ratios(self) -> Tuple[float, ...]:
        """Per-instance p*(RA) / p*(FA); infinity when FA never succeeded."""
        ratios = []
        for fa, ra in zip(self.fa_best_success, self.ra_best_success):
            if fa == 0.0:
                ratios.append(np.inf if ra > 0 else 1.0)
            else:
                ratios.append(ra / fa)
        return tuple(ratios)

    @property
    def tts_speedups(self) -> Tuple[float, ...]:
        """Per-instance TTS(FA) / TTS(RA); infinity when FA's TTS is infinite."""
        speedups = []
        for fa, ra in zip(self.fa_best_tts_us, self.ra_best_tts_us):
            if not np.isfinite(fa):
                speedups.append(np.inf if np.isfinite(ra) else 1.0)
            elif not np.isfinite(ra):
                speedups.append(0.0)
            else:
                speedups.append(fa / ra)
        return tuple(speedups)

    @property
    def median_tts_speedup(self) -> float:
        """Median TTS speedup across instances (finite values only)."""
        finite = [value for value in self.tts_speedups if np.isfinite(value)]
        return float(np.median(finite)) if finite else float("inf")

    @property
    def median_success_ratio(self) -> float:
        """Median p* ratio across instances (finite values only)."""
        finite = [value for value in self.success_ratios if np.isfinite(value)]
        return float(np.median(finite)) if finite else float("inf")


def run_headline(
    config: HeadlineConfig = HeadlineConfig(),
    sampler: Optional[QuantumAnnealerSimulator] = None,
) -> HeadlineResult:
    """Run the best-operating-point comparison of RA(GS) vs FA."""
    annealer = sampler if sampler is not None else QuantumAnnealerSimulator(
        seed=stable_seed("headline", config.base_seed)
    )
    greedy = GreedySearchSolver()
    bundles = [
        synthesize_instance(config.num_users, config.modulation, seed=seed)
        for seed in config.instance_seeds
    ]

    labels: List[str] = [bundle.describe() for bundle in bundles]
    qubos = [bundle.encoding.qubo for bundle in bundles]
    grounds = [bundle.ground_energy for bundle in bundles]

    # Both methods sweep all instances at once: every grid point is one
    # batched annealer submission across the instance seeds.
    fa_per_instance = sweep_switch_point_batch(
        qubos,
        grounds,
        method="FA",
        switch_values=config.switch_values,
        sampler=annealer,
        num_reads=config.num_reads,
        pause_duration_us=config.pause_duration_us,
        anneal_time_us=config.anneal_time_us,
        rng=stable_seed("headline-fa", config.base_seed),
    )
    greedy_solutions = greedy.solve_batch(qubos)
    ra_per_instance = sweep_switch_point_batch(
        qubos,
        grounds,
        method="RA",
        switch_values=config.switch_values,
        initial_states=[solution.assignment for solution in greedy_solutions],
        sampler=annealer,
        num_reads=config.num_reads,
        pause_duration_us=config.pause_duration_us,
        rng=stable_seed("headline-ra", config.base_seed),
    )

    fa_success: List[float] = []
    ra_success: List[float] = []
    fa_tts: List[float] = []
    ra_tts: List[float] = []
    fa_switch: List[float] = []
    ra_switch: List[float] = []

    for fa_records, ra_records in zip(fa_per_instance, ra_per_instance):
        fa_best = best_switch_point(fa_records)
        fa_success.append(fa_best.success_probability)
        fa_tts.append(fa_best.tts.tts_us)
        fa_switch.append(fa_best.switch_s)

        ra_best = best_switch_point(ra_records)
        ra_success.append(ra_best.success_probability)
        ra_tts.append(ra_best.tts.tts_us)
        ra_switch.append(ra_best.switch_s)

    return HeadlineResult(
        instance_labels=tuple(labels),
        fa_best_success=tuple(fa_success),
        ra_best_success=tuple(ra_success),
        fa_best_tts_us=tuple(fa_tts),
        ra_best_tts_us=tuple(ra_tts),
        fa_best_switch=tuple(fa_switch),
        ra_best_switch=tuple(ra_switch),
    )


def format_headline_report(result: HeadlineResult) -> str:
    """Render the headline comparison, one instance per row plus the medians."""
    lines = [
        "Headline - RA(GS) hybrid vs FA baseline at each method's best operating point",
        f"{'instance':>44}  {'FA p*':>7}  {'RA p*':>7}  {'p* ratio':>8}  "
        f"{'FA TTS(us)':>11}  {'RA TTS(us)':>11}  {'speedup':>8}",
    ]
    for index, label in enumerate(result.instance_labels):
        ratio = result.success_ratios[index]
        speedup = result.tts_speedups[index]
        ratio_text = f"{ratio:.1f}x" if np.isfinite(ratio) else "inf"
        speedup_text = f"{speedup:.1f}x" if np.isfinite(speedup) else "inf"
        fa_tts = result.fa_best_tts_us[index]
        ra_tts = result.ra_best_tts_us[index]
        lines.append(
            f"{label:>44}  {result.fa_best_success[index]:>7.3f}  "
            f"{result.ra_best_success[index]:>7.3f}  {ratio_text:>8}  "
            f"{(f'{fa_tts:.1f}' if np.isfinite(fa_tts) else 'inf'):>11}  "
            f"{(f'{ra_tts:.1f}' if np.isfinite(ra_tts) else 'inf'):>11}  {speedup_text:>8}"
        )
    lines.append(
        f"median p* ratio: {result.median_success_ratio:.2f}x, "
        f"median TTS speedup: {result.median_tts_speedup:.2f}x "
        "(paper reports approximately 2-10x)"
    )
    return "\n".join(lines)
