"""Extension experiment E-X2: the power of pausing (ablation).

The paper's experimental setup (footnote 3 and Sec. 4.2) fixes a 1 us pause
because "the annealing pause brings out improvements for FA and for RA",
citing the pausing literature.  This ablation quantifies that design choice on
the simulator: forward annealing is run with no pause and with pauses of
different durations and locations, and reverse annealing's pause duration is
swept at a fixed switch point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.classical.greedy import GreedySearchSolver
from repro.experiments.instances import InstanceBundle, synthesize_instance
from repro.metrics.tts import time_to_solution
from repro.utils.rng import stable_seed

__all__ = ["PauseAblationConfig", "PauseAblationRow", "run_pause_ablation", "format_pause_table"]


@dataclass(frozen=True)
class PauseAblationConfig:
    """Configuration of the pause ablation."""

    num_users: int = 8
    modulation: str = "16-QAM"
    instance_seed: int = 12
    pause_durations_us: Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)
    fa_pause_location: float = 0.49
    ra_switch_s: float = 0.41
    num_reads: int = 400
    base_seed: int = 0

    @classmethod
    def quick(cls) -> "PauseAblationConfig":
        """A minimal configuration used by the test suite."""
        return cls(num_users=3, pause_durations_us=(0.0, 1.0), num_reads=60)


@dataclass(frozen=True)
class PauseAblationRow:
    """Performance of one (method, pause duration) combination."""

    method: str
    pause_duration_us: float
    success_probability: float
    tts_us: float
    duration_us: float


def run_pause_ablation(
    config: PauseAblationConfig = PauseAblationConfig(),
    sampler: Optional[QuantumAnnealerSimulator] = None,
    bundle: Optional[InstanceBundle] = None,
) -> List[PauseAblationRow]:
    """Sweep the pause duration for FA and RA(GS) on one instance."""
    instance = bundle if bundle is not None else synthesize_instance(
        config.num_users, config.modulation, seed=config.instance_seed
    )
    annealer = sampler if sampler is not None else QuantumAnnealerSimulator(
        seed=stable_seed("pause-ablation", config.base_seed)
    )
    qubo = instance.encoding.qubo
    ground = instance.ground_energy
    greedy = GreedySearchSolver().solve(qubo)

    rows: List[PauseAblationRow] = []
    for pause in config.pause_durations_us:
        pause = float(pause)
        if pause == 0.0:
            fa = annealer.forward_anneal(qubo, num_reads=config.num_reads, anneal_time_us=1.0)
        else:
            fa = annealer.forward_anneal(
                qubo,
                num_reads=config.num_reads,
                anneal_time_us=1.0,
                pause_s=config.fa_pause_location,
                pause_duration_us=pause,
            )
        fa_duration = fa.metadata["schedule_duration_us"]
        fa_probability = fa.success_probability(ground)
        rows.append(
            PauseAblationRow(
                method="FA",
                pause_duration_us=pause,
                success_probability=fa_probability,
                tts_us=time_to_solution(fa_probability, fa_duration).tts_us,
                duration_us=fa_duration,
            )
        )

        ra = annealer.reverse_anneal(
            qubo,
            greedy.assignment,
            switch_s=config.ra_switch_s,
            num_reads=config.num_reads,
            pause_duration_us=pause,
        )
        ra_duration = ra.metadata["schedule_duration_us"]
        ra_probability = ra.success_probability(ground)
        rows.append(
            PauseAblationRow(
                method="RA-greedy",
                pause_duration_us=pause,
                success_probability=ra_probability,
                tts_us=time_to_solution(ra_probability, ra_duration).tts_us,
                duration_us=ra_duration,
            )
        )
    return rows


def format_pause_table(rows: Sequence[PauseAblationRow]) -> str:
    """Render the pause ablation as an aligned text table."""
    lines = [
        "Ablation - the power of pausing (FA pause at fixed location, RA pause at s_p)",
        f"{'method':>10}  {'pause (us)':>10}  {'p*':>7}  {'TTS (us)':>12}  {'duration (us)':>13}",
    ]
    import numpy as np

    for row in rows:
        tts_text = f"{row.tts_us:.1f}" if np.isfinite(row.tts_us) else "inf"
        lines.append(
            f"{row.method:>10}  {row.pause_duration_us:>10.2f}  {row.success_probability:>7.3f}  "
            f"{tts_text:>12}  {row.duration_us:>13.2f}"
        )
    return "\n".join(lines)
