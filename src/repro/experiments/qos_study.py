"""Experiment E-QS: multi-service QoS classes, classless vs class-aware.

The scenario study (E-SC) prices *elasticity*; this study prices the
**degradation ladder** (:mod:`repro.serving.qos`).  Every catalog scenario
is served twice by the identical plant on the *identical* mixed-class
workload — urllc / embb / best-effort users cycling per cell, re-homed
mid-scenario by velocity-coupled inter-cell handover
(:class:`~repro.serving.workload.HandoverModel`):

* **classless** — ``class_aware=False``: the scheduler, coalescer and
  admission controller see shapes only, exactly the pre-QoS semantics; and
* **aware** — ``class_aware=True``: priority-first EDF, batches never cross
  the degradation boundary, and admission demotes/sheds the low classes
  under pressure.

Per (scenario, class) the study reports both arms' deadline-miss rates, p99
latencies and demotion rates, showing where class awareness buys urllc
misses back by letting best-effort absorb the overload.  Everything is
timing-modelled and exactly reproducible from ``base_seed``; shards are
arm-independent, so serial and process-pool runs agree bitwise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.experiments.driver import ExperimentDriver, mean_or_nan, run_driver
from repro.network.topology import build_topology
from repro.parallel import ResultCache, ShardTask
from repro.serving.backends import AnnealerServingBackend, ClassicalServingBackend
from repro.serving.pool import BackendPool
from repro.serving.qos import resolve_service_class
from repro.serving.report import ServingReport, format_serving_report
from repro.serving.scenarios import SCENARIO_NAMES, build_scenario
from repro.serving.simulator import RANServingSimulator
from repro.serving.workload import (
    HandoverModel,
    generate_serving_jobs,
    uniform_cell_profiles,
)
from repro.telemetry.log import get_logger
from repro.utils.rng import stable_seed
from repro.wireless.mimo import MIMOConfig

_log = get_logger(__name__)

__all__ = [
    "QOS_ARMS",
    "QOS_METRICS",
    "QoSStudyConfig",
    "QoSStudyDriver",
    "QoSStudyRow",
    "QoSStudyResult",
    "collect_qos_rows",
    "qos_study_tasks",
    "run_qos_study",
    "format_qos_table",
]

#: Serving arms of the study, in task order per scenario.
QOS_ARMS: Tuple[str, ...] = ("classless", "aware")

#: Scalar metric columns of the ``qos`` ablation target, in order.
QOS_METRICS = (
    "urllc_aware_miss_rate_max",
    "urllc_classless_miss_rate_max",
    "aware_miss_rate_mean",
    "classless_miss_rate_mean",
    "best_effort_demotion_rate_mean",
    "handover_fraction_mean",
)


@dataclass(frozen=True)
class QoSStudyConfig:
    """Configuration of the QoS-class study.

    Attributes
    ----------
    num_cells / users_per_cell / num_users / modulations:
        Cell line and user population (configurations cycle across users).
    service_classes:
        QoS class names cycled across each cell's users (see
        :data:`repro.serving.qos.SERVICE_CLASSES`); per-class budgets
        override the generic ``turnaround_budget_us``.
    base_symbol_period_us / horizon_us / max_jobs_per_user:
        Traffic shape shared with the scenario study.
    scenarios:
        Catalog names to sweep (see :data:`repro.serving.SCENARIO_NAMES`).
    velocity_mps / cell_radius_m:
        Mobility model of the handover timelines (0 disables handover).
    handover_time_compression:
        The catalog compresses hours of RAN time into a ~20 ms plant
        horizon; mobility is compressed by the same factor so boundary
        crossings land inside the horizon (the effective crossing rate is
        ``handover_rate_per_us(velocity_mps * handover_time_compression)``).
    turnaround_budget_us / num_reads / lanes / max_batch_size / policy /
    annealer_workers / classical_workers / admission_control:
        Plant knobs shared by both arms.
    base_seed:
        Root of every derived seed.
    """

    num_cells: int = 4
    users_per_cell: int = 3
    num_users: int = 2
    modulations: Tuple[str, ...] = ("QPSK", "16-QAM")
    service_classes: Tuple[str, ...] = ("urllc", "embb", "best_effort")
    base_symbol_period_us: float = 150.0
    horizon_us: float = 20_000.0
    max_jobs_per_user: int = 900
    scenarios: Tuple[str, ...] = ("steady", "flash-crowd", "busy-day")
    velocity_mps: float = 30.0
    cell_radius_m: float = 250.0
    handover_time_compression: float = 1e4
    turnaround_budget_us: float = 600.0
    num_reads: int = 30
    lanes: int = 4
    max_batch_size: Optional[int] = 4
    policy: str = "edf"
    annealer_workers: int = 2
    classical_workers: int = 1
    admission_control: bool = True
    base_seed: int = 0

    def __post_init__(self) -> None:
        for name in self.scenarios:
            if name not in SCENARIO_NAMES:
                raise ConfigurationError(
                    f"unknown scenario {name!r}; catalog: {', '.join(SCENARIO_NAMES)}"
                )
        for name in self.service_classes:
            resolve_service_class(name)

    @classmethod
    def quick(cls) -> "QoSStudyConfig":
        """A minimal configuration used by the test suite and CI smoke."""
        return cls(
            num_cells=2,
            users_per_cell=3,
            horizon_us=6_000.0,
            max_jobs_per_user=60,
            scenarios=("steady", "busy-day"),
            num_reads=10,
        )

    @classmethod
    def paper_scale(cls) -> "QoSStudyConfig":
        """A denser population over a longer horizon (slow)."""
        return cls(
            num_cells=8,
            users_per_cell=4,
            horizon_us=60_000.0,
            max_jobs_per_user=1200,
            annealer_workers=3,
        )


@dataclass(frozen=True)
class QoSStudyRow:
    """Both arms' outcomes for one (scenario, service class) pair."""

    scenario: str
    service_class: str
    jobs: int
    handover_fraction: float
    classless_miss_rate: float
    aware_miss_rate: float
    classless_p99_us: float
    aware_p99_us: float
    classless_demotion_rate: float
    aware_demotion_rate: float


@dataclass(frozen=True)
class QoSStudyResult:
    """Per-(scenario, class) rows plus the last aware detail report."""

    rows: List[QoSStudyRow]
    detail: ServingReport
    config: QoSStudyConfig


def _qos_jobs(config: QoSStudyConfig, name: str, workload_seed: int):
    """The scenario's mixed-class, handover-re-homed workload (arm-shared)."""
    topology = build_topology("line", 1, config.num_cells)
    scenario = build_scenario(
        name, config.num_cells, horizon_us=config.horizon_us, topology=topology
    )
    configs = [MIMOConfig(config.num_users, modulation) for modulation in config.modulations]
    profiles = uniform_cell_profiles(
        num_cells=config.num_cells,
        users_per_cell=config.users_per_cell,
        configs=configs,
        symbol_period_us=config.base_symbol_period_us,
        arrival_process="poisson",
        turnaround_budget_us=config.turnaround_budget_us,
        service_classes=config.service_classes,
    )
    handover = HandoverModel(
        velocity_mps=config.velocity_mps * config.handover_time_compression,
        cell_radius_m=config.cell_radius_m,
        seed=workload_seed,
    )
    jobs = generate_serving_jobs(
        profiles,
        config.max_jobs_per_user,
        rng=workload_seed,
        scenario=scenario,
        handover=handover,
    )
    if not jobs:
        raise ConfigurationError(
            f"scenario {name!r} produced no jobs; increase horizon_us or lower "
            "base_symbol_period_us"
        )
    return topology, jobs


def _qos_shard(config: QoSStudyConfig, arm: str, workload_seed: int) -> ServingReport:
    """One (scenario, arm) shard of the QoS sweep.

    ``config.scenarios`` holds exactly the shard's scenario, and both arms
    regenerate the *identical* job list from ``workload_seed`` — the
    comparison is paired by construction, only the plant's class awareness
    differs.  Shards are independent of execution order and worker count.
    """
    if len(config.scenarios) != 1:
        raise ConfigurationError(
            f"a QoS shard serves exactly one scenario, got {config.scenarios!r}"
        )
    if arm not in QOS_ARMS:
        raise ConfigurationError(f"arm must be one of {QOS_ARMS}, got {arm!r}")
    name = config.scenarios[0]
    topology, jobs = _qos_jobs(config, name, workload_seed)
    backends: List = [
        AnnealerServingBackend(num_reads=config.num_reads, lanes=config.lanes)
    ] * config.annealer_workers
    backends += [ClassicalServingBackend()] * config.classical_workers
    report = RANServingSimulator(
        pool=BackendPool(backends),
        policy=config.policy,
        max_batch_size=config.max_batch_size,
        admission_control=config.admission_control,
        topology=topology,
        class_aware=(arm == "aware"),
    ).run(jobs)
    report.metadata["handover_jobs"] = sum(1 for job in jobs if job.handed_over)
    return report


def qos_study_tasks(config: QoSStudyConfig) -> List[ShardTask]:
    """The sweep's shard list: one (scenario, arm) task per catalog entry.

    Each task's configuration is restricted to its own scenario and its
    workload seed is the per-scenario child seed, so a task's cache
    fingerprint never depends on which *other* scenarios the sweep contains.
    """
    tasks: List[ShardTask] = []
    for name in config.scenarios:
        shard_config = dataclasses.replace(config, scenarios=(name,))
        workload_seed = stable_seed("qos-study", name, config.base_seed)
        for arm in QOS_ARMS:
            tasks.append(
                ShardTask(
                    key=("qos-study", name, arm),
                    fn=_qos_shard,
                    kwargs={
                        "config": shard_config,
                        "arm": arm,
                        "workload_seed": workload_seed,
                    },
                )
            )
    return tasks


def collect_qos_rows(
    config: QoSStudyConfig, reports: List[ServingReport]
) -> List[QoSStudyRow]:
    """Pair the (classless, aware) shard reports back into per-class rows.

    Shared by :func:`run_qos_study` and the ablation-target binding.  Both
    arms serve the identical job list, so they expose the identical class
    set; rows follow the aware report's (sorted) class order.
    """
    rows: List[QoSStudyRow] = []
    for position, name in enumerate(config.scenarios):
        classless = reports[2 * position]
        aware = reports[2 * position + 1]
        handover_fraction = (
            aware.metadata.get("handover_jobs", 0) / aware.num_jobs
            if aware.num_jobs
            else 0.0
        )
        for entry in aware.class_reports:
            baseline = classless.class_report(entry.service_class)
            rows.append(
                QoSStudyRow(
                    scenario=name,
                    service_class=entry.service_class,
                    jobs=entry.jobs,
                    handover_fraction=handover_fraction,
                    classless_miss_rate=(
                        baseline.deadline_miss_rate or 0.0 if baseline else 0.0
                    ),
                    aware_miss_rate=entry.deadline_miss_rate or 0.0,
                    classless_p99_us=baseline.p99_latency_us if baseline else 0.0,
                    aware_p99_us=entry.p99_latency_us,
                    classless_demotion_rate=(
                        baseline.demotion_rate if baseline else 0.0
                    ),
                    aware_demotion_rate=entry.demotion_rate,
                )
            )
    return rows


class QoSStudyDriver(ExperimentDriver):
    """The QoS-class sweep behind the shared experiment-driver protocol."""

    name = "qos"
    metric_names = QOS_METRICS

    def tasks(self, config: QoSStudyConfig) -> List[ShardTask]:
        return qos_study_tasks(config)

    def aggregate(
        self, config: QoSStudyConfig, results: List[ServingReport]
    ) -> QoSStudyResult:
        return QoSStudyResult(
            rows=collect_qos_rows(config, list(results)),
            detail=results[-1] if results else None,
            config=config,
        )

    def metrics(self, rows) -> Tuple[Tuple[str, float], ...]:
        urllc = [row for row in rows if row.service_class == "urllc"]
        best_effort = [row for row in rows if row.service_class == "best_effort"]
        return (
            (
                "urllc_aware_miss_rate_max",
                max((row.aware_miss_rate for row in urllc), default=float("nan")),
            ),
            (
                "urllc_classless_miss_rate_max",
                max((row.classless_miss_rate for row in urllc), default=float("nan")),
            ),
            ("aware_miss_rate_mean", mean_or_nan([row.aware_miss_rate for row in rows])),
            (
                "classless_miss_rate_mean",
                mean_or_nan([row.classless_miss_rate for row in rows]),
            ),
            (
                "best_effort_demotion_rate_mean",
                mean_or_nan([row.aware_demotion_rate for row in best_effort]),
            ),
            (
                "handover_fraction_mean",
                mean_or_nan([row.handover_fraction for row in rows]),
            ),
        )

    def progress(self, config, tasks, results) -> None:
        for position, name in enumerate(config.scenarios):
            aware = results[2 * position + 1]
            telemetry.emit_progress(
                "qos-study", name, miss_rate=aware.deadline_miss_rate or 0.0
            )


def run_qos_study(
    config: QoSStudyConfig = QoSStudyConfig(),
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> QoSStudyResult:
    """Serve every catalog scenario classless and class-aware, per class.

    ``workers`` shards the sweep across a process pool (results are
    bitwise-identical to the serial path at any worker count) and ``cache``
    reuses shard results across runs; see :mod:`repro.parallel`.
    """
    if not config.scenarios:
        raise ConfigurationError("scenarios must not be empty")
    if not config.service_classes:
        raise ConfigurationError("service_classes must not be empty")
    if config.annealer_workers < 1:
        raise ConfigurationError(
            f"annealer_workers must be at least 1, got {config.annealer_workers}"
        )
    _log.info("qos_study.start", scenarios=len(config.scenarios), workers=workers or 1)
    return run_driver(QoSStudyDriver(), config, workers=workers, cache=cache)


def format_qos_table(result: QoSStudyResult) -> str:
    """Render the QoS sweep plus the last aware report as text."""
    config = result.config
    lines = [
        "RAN QoS study - classless vs class-aware serving across the catalog",
        f"{config.num_cells} cells x {config.users_per_cell} users, classes "
        f"{'/'.join(config.service_classes)}, horizon "
        f"{config.horizon_us / 1000.0:.1f} ms, velocity {config.velocity_mps:.0f} m/s, "
        f"policy {config.policy}, {config.annealer_workers} annealer + "
        f"{config.classical_workers} classical workers",
        f"{'scenario':>14}  {'class':>12}  {'jobs':>5}  {'handover':>8}  "
        f"{'miss(classless)':>15}  {'miss(aware)':>11}  {'p99(classless)':>14}  "
        f"{'p99(aware)':>10}  {'demoted(aware)':>14}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.scenario:>14}  {row.service_class:>12}  {row.jobs:>5d}  "
            f"{row.handover_fraction:>8.3f}  {row.classless_miss_rate:>15.3f}  "
            f"{row.aware_miss_rate:>11.3f}  {row.classless_p99_us:>14.1f}  "
            f"{row.aware_p99_us:>10.1f}  {row.aware_demotion_rate:>14.3f}"
        )
    lines.append("")
    lines.append(
        format_serving_report(
            result.detail,
            title=(
                "class-aware serving report for scenario "
                f"{result.rows[-1].scenario!r}"
            ),
        )
    )
    return "\n".join(lines)
