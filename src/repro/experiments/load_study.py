"""Experiment E-SV: offered-load sweep of the RAN serving architectures.

The paper's Figure 2 argues that a centralised RAN should push detection jobs
from many users through a *staged and pooled* hybrid plant.  This study
quantifies the claim as deadline-miss-rate-vs-load curves: the same
multi-user, multi-cell workload (scaled to a grid of offered-load factors) is
served by three architectures —

* **serialized** — one annealer worker, one job at a time (the single-server
  baseline every comparison starts from);
* **pipelined** — the Figure-2 two-stage pipeline
  (:class:`repro.hybrid.HybridPipelineSimulator`), which overlaps classical
  and quantum stages but still serves one job per stage at a time;
* **pooled** — the serving subsystem (:class:`repro.serving.RANServingSimulator`):
  K batched annealer workers, deadline-aware scheduling, compatible-job
  coalescing and classical-fallback admission control.

The sweep reports per-load deadline-miss rates and p95 latencies for each
architecture, plus the pooled system's batch occupancy and demotion rate —
showing how the batched pool absorbs load the serial designs drop.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.experiments.driver import ExperimentDriver, mean_or_nan, run_driver
from repro.hybrid.pipeline import HybridPipelineSimulator, PipelineReport
from repro.parallel import ResultCache, ShardTask
from repro.serving.backends import AnnealerServingBackend, ClassicalServingBackend
from repro.serving.pool import BackendPool
from repro.serving.report import ServingReport, format_serving_report
from repro.serving.simulator import RANServingSimulator
from repro.serving.workload import generate_serving_jobs, uniform_cell_profiles
from repro.telemetry.log import get_logger
from repro.utils.rng import stable_seed
from repro.wireless.mimo import MIMOConfig

_log = get_logger(__name__)

__all__ = [
    "SERVE_METRICS",
    "LoadStudyConfig",
    "LoadStudyDriver",
    "LoadStudyRow",
    "LoadStudyResult",
    "collect_load_rows",
    "load_study_tasks",
    "run_load_study",
    "format_load_study_table",
]

#: Scalar metric columns of the ``serve`` ablation target, in order.
SERVE_METRICS = (
    "pooled_miss_rate_mean",
    "pooled_miss_rate_max",
    "serialized_miss_rate_mean",
    "pipelined_miss_rate_mean",
    "pooled_p95_us_max",
    "pooled_demotion_rate_mean",
)


@dataclass(frozen=True)
class LoadStudyConfig:
    """Configuration of the offered-load sweep.

    Attributes
    ----------
    num_cells / users_per_cell / jobs_per_user:
        Workload shape.  Users cycle through ``modulations`` (heterogeneous
        population) and ``num_users`` spatial streams.
    base_symbol_period_us:
        Per-user mean channel-use spacing at load factor 1.0; a load factor
        ``f`` divides it by ``f``.
    load_factors:
        The sweep grid.
    turnaround_budget_us:
        Relative deadline of every job.
    num_reads / switch_s:
        Reverse-annealing programme of the quantum stage(s).
    annealer_workers / lanes / max_batch_size / policy / classical_workers /
    admission_control:
        Pooled-architecture knobs (the serialized arm always uses one
        annealer worker with ``lanes=1`` and batch size 1).
    arrival_process:
        ``"poisson"`` (bursty) or ``"deterministic"``.
    """

    num_cells: int = 2
    users_per_cell: int = 3
    jobs_per_user: int = 8
    num_users: int = 2
    modulations: Tuple[str, ...] = ("QPSK", "16-QAM")
    base_symbol_period_us: float = 900.0
    load_factors: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    turnaround_budget_us: float = 600.0
    arrival_process: str = "poisson"
    num_reads: int = 30
    switch_s: float = 0.41
    annealer_workers: int = 3
    classical_workers: int = 1
    lanes: int = 8
    max_batch_size: Optional[int] = 8
    policy: str = "edf"
    admission_control: bool = True
    base_seed: int = 0

    @classmethod
    def quick(cls) -> "LoadStudyConfig":
        """A minimal configuration used by the test suite."""
        return cls(
            num_cells=1,
            users_per_cell=2,
            jobs_per_user=4,
            load_factors=(1.0, 4.0),
            num_reads=10,
            annealer_workers=2,
        )

    @classmethod
    def paper_scale(cls) -> "LoadStudyConfig":
        """A dense sweep over a larger cell layout (slow)."""
        return cls(
            num_cells=4,
            users_per_cell=6,
            jobs_per_user=20,
            load_factors=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
            annealer_workers=4,
        )


@dataclass(frozen=True)
class LoadStudyRow:
    """Miss rate and latency of the three architectures at one offered load."""

    load_factor: float
    offered_load_jobs_per_ms: float
    serialized_miss_rate: float
    pipelined_miss_rate: float
    pooled_miss_rate: float
    serialized_p95_us: float
    pipelined_p95_us: float
    pooled_p95_us: float
    pooled_mean_batch: float
    pooled_demotion_rate: float


@dataclass(frozen=True)
class LoadStudyResult:
    """Sweep rows plus the pooled system's detailed report at the peak load."""

    rows: List[LoadStudyRow]
    detail: ServingReport
    config: LoadStudyConfig


def _annealer_backend(config: LoadStudyConfig, lanes: int) -> AnnealerServingBackend:
    return AnnealerServingBackend(
        switch_s=config.switch_s,
        num_reads=config.num_reads,
        lanes=lanes,
    )


def _workload(config: LoadStudyConfig, load_factor: float, workload_seed: int):
    configs = [MIMOConfig(config.num_users, modulation) for modulation in config.modulations]
    profiles = uniform_cell_profiles(
        num_cells=config.num_cells,
        users_per_cell=config.users_per_cell,
        configs=configs,
        symbol_period_us=config.base_symbol_period_us / load_factor,
        arrival_process=config.arrival_process,
        turnaround_budget_us=config.turnaround_budget_us,
    )
    # The same seed family at every load factor: scaling the period rescales
    # arrival times but keeps channel realisations comparable across loads.
    return generate_serving_jobs(profiles, config.jobs_per_user, rng=workload_seed)


def _load_shard(
    config: LoadStudyConfig, workload_seed: int, pipeline_seed: int
) -> Tuple[ServingReport, PipelineReport, ServingReport]:
    """One load-factor shard: (serialized, pipelined, pooled) reports.

    ``config.load_factors`` holds exactly the shard's load factor; all
    randomness flows through the explicit ``workload_seed`` /
    ``pipeline_seed`` children (shared across load factors so channel
    realisations stay comparable), making the shard independent of
    execution order and worker count.
    """
    if len(config.load_factors) != 1:
        raise ConfigurationError(
            f"a load shard sweeps exactly one load factor, got {config.load_factors!r}"
        )
    load_factor = config.load_factors[0]
    jobs = _workload(config, load_factor, workload_seed)

    serialized = RANServingSimulator(
        pool=BackendPool([_annealer_backend(config, lanes=1)]),
        policy="fifo",
        max_batch_size=1,
        admission_control=False,
    ).run(jobs)

    # The Figure-2 pipeline consumes the merged trace as a channel-use
    # stream (re-indexed into global arrival order).
    channel_uses = [
        dataclasses.replace(job.channel_use, index=position)
        for position, job in enumerate(jobs)
    ]
    pipelined = HybridPipelineSimulator(
        switch_s=config.switch_s,
        num_reads=config.num_reads,
        evaluate_solutions=False,
    ).run(channel_uses, pipelined=True, rng=pipeline_seed)

    pooled_backends = [_annealer_backend(config, lanes=config.lanes)] * config.annealer_workers
    pooled_backends += [ClassicalServingBackend()] * config.classical_workers
    pooled = RANServingSimulator(
        pool=BackendPool(pooled_backends),
        policy=config.policy,
        max_batch_size=config.max_batch_size,
        admission_control=config.admission_control,
    ).run(jobs)
    return serialized, pipelined, pooled


def load_study_tasks(config: LoadStudyConfig) -> List[ShardTask]:
    """The sweep's shard list: one task per load factor.

    Each task's configuration is restricted to its own load factor, so a
    grid edit re-keys (and recomputes) only the touched points.
    """
    workload_seed = stable_seed("load-study", config.base_seed)
    pipeline_seed = stable_seed("load-pipe", config.base_seed)
    return [
        ShardTask(
            key=("load-study", float(load_factor)),
            fn=_load_shard,
            kwargs={
                "config": dataclasses.replace(config, load_factors=(float(load_factor),)),
                "workload_seed": workload_seed,
                "pipeline_seed": pipeline_seed,
            },
        )
        for load_factor in config.load_factors
    ]


class LoadStudyDriver(ExperimentDriver):
    """The offered-load sweep behind the shared experiment-driver protocol."""

    name = "serve"
    metric_names = SERVE_METRICS

    def tasks(self, config: LoadStudyConfig) -> List[ShardTask]:
        return load_study_tasks(config)

    def aggregate(self, config: LoadStudyConfig, results) -> "LoadStudyResult":
        return LoadStudyResult(
            rows=collect_load_rows(config, results),
            detail=results[-1][2] if results else None,
            config=config,
        )

    def metrics(self, rows) -> Tuple[Tuple[str, float], ...]:
        pooled = [row.pooled_miss_rate for row in rows]
        return (
            ("pooled_miss_rate_mean", mean_or_nan(pooled)),
            ("pooled_miss_rate_max", max(pooled, default=float("nan"))),
            (
                "serialized_miss_rate_mean",
                mean_or_nan([row.serialized_miss_rate for row in rows]),
            ),
            (
                "pipelined_miss_rate_mean",
                mean_or_nan([row.pipelined_miss_rate for row in rows]),
            ),
            (
                "pooled_p95_us_max",
                max((row.pooled_p95_us for row in rows), default=float("nan")),
            ),
            (
                "pooled_demotion_rate_mean",
                mean_or_nan([row.pooled_demotion_rate for row in rows]),
            ),
        )

    def progress(self, config, tasks, results) -> None:
        for load_factor, (_, _, pooled) in zip(config.load_factors, results):
            telemetry.emit_progress(
                "load-study",
                load_factor,
                pooled_miss_rate=pooled.deadline_miss_rate or 0.0,
            )
            _log.debug("load_study.point", load_factor=load_factor)


def run_load_study(
    config: LoadStudyConfig = LoadStudyConfig(),
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> LoadStudyResult:
    """Sweep the load grid over the three serving architectures.

    ``workers`` shards the sweep across a process pool (results are
    bitwise-identical to the serial path at any worker count) and ``cache``
    reuses shard results across runs; see :mod:`repro.parallel`.
    """
    if not config.load_factors:
        raise ConfigurationError("load_factors must not be empty")
    for factor in config.load_factors:
        if factor <= 0:
            raise ConfigurationError(f"load factors must be positive, got {factor}")

    _log.info("load_study.start", points=len(config.load_factors), workers=workers or 1)
    return run_driver(LoadStudyDriver(), config, workers=workers, cache=cache)


def collect_load_rows(
    config: LoadStudyConfig,
    shards: Tuple[Tuple[ServingReport, PipelineReport, ServingReport], ...],
) -> List[LoadStudyRow]:
    """Reassemble the sweep's rows from the per-load-factor shard triples.

    Shared by :func:`run_load_study` and the ablation-target binding, so the
    declarative harness reports exactly the rows the imperative driver does.
    """
    rows: List[LoadStudyRow] = []
    for load_factor, (serialized, pipelined, pooled) in zip(config.load_factors, shards):
        rows.append(
            LoadStudyRow(
                load_factor=load_factor,
                offered_load_jobs_per_ms=pooled.offered_load_jobs_per_ms,
                serialized_miss_rate=serialized.deadline_miss_rate or 0.0,
                pipelined_miss_rate=pipelined.deadline_miss_rate or 0.0,
                pooled_miss_rate=pooled.deadline_miss_rate or 0.0,
                serialized_p95_us=serialized.p95_latency_us,
                pipelined_p95_us=pipelined.p95_latency_us,
                pooled_p95_us=pooled.p95_latency_us,
                pooled_mean_batch=pooled.mean_batch_size,
                pooled_demotion_rate=pooled.demotion_rate,
            )
        )
    return rows


def format_load_study_table(result: LoadStudyResult) -> str:
    """Render the sweep plus the peak-load pooled report as text."""
    config = result.config
    lines = [
        "RAN serving load study - deadline-miss rate vs offered load",
        f"{config.num_cells} cells x {config.users_per_cell} users, "
        f"{config.jobs_per_user} jobs/user, budget {config.turnaround_budget_us:.0f} us, "
        f"policy {config.policy}, {config.annealer_workers} annealer + "
        f"{config.classical_workers} classical workers",
        f"{'load':>6}  {'jobs/ms':>8}  {'miss(serial)':>12}  {'miss(pipe)':>10}  "
        f"{'miss(pool)':>10}  {'p95(serial)':>11}  {'p95(pipe)':>9}  {'p95(pool)':>9}  "
        f"{'mean B':>6}  {'demoted':>7}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.load_factor:>6.2f}  {row.offered_load_jobs_per_ms:>8.2f}  "
            f"{row.serialized_miss_rate:>12.3f}  {row.pipelined_miss_rate:>10.3f}  "
            f"{row.pooled_miss_rate:>10.3f}  {row.serialized_p95_us:>11.1f}  "
            f"{row.pipelined_p95_us:>9.1f}  {row.pooled_p95_us:>9.1f}  "
            f"{row.pooled_mean_batch:>6.2f}  {row.pooled_demotion_rate:>7.3f}"
        )
    lines.append("")
    lines.append(
        format_serving_report(
            result.detail,
            title=f"pooled serving report at load {result.rows[-1].load_factor:.2f}",
        )
    )
    return "\n".join(lines)
