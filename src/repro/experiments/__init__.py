"""Experiment runners reproducing every figure of the paper's evaluation.

Each experiment module exposes a configuration dataclass, a ``run`` function
returning structured results, and a ``format_table`` helper that prints the
same rows/series the paper reports.  The benchmark harness under
``benchmarks/`` is a thin wrapper over these runners; they can also be invoked
from the command line via ``repro-experiments`` (see :mod:`repro.cli`).

Experiment index (see DESIGN.md for the full mapping):

========  ==========================================================
E-F3      Figure 3 — QUBO simplification by variable prefixing
E-F6      Figure 6 — ΔE% distributions of FA / RA(random) / RA(GS)
E-F7      Figure 7 — RA performance vs initial-state quality ΔE_IS%
E-F8      Figure 8 — p* and TTS vs s_p for FA / FR / RA
E-HL      Headline — RA vs FA speedup (2-10x claim)
E-F2      Figure 2 — pipelined classical/quantum processing
E-F4      Figure 4 — soft-information constraints (ablation)
E-AB1     Ablation — initialiser quality (GS / ZF / MMSE / sphere)
E-X1      Extension — BER vs SNR under AWGN
E-X2      Extension — the power of pausing (pause-duration ablation)
E-X3      Extension — detection robustness under channel impairments
          (correlation, Doppler, imperfect CSI, interference)
E-SV      Serving — deadline-miss rate vs offered load across the
          serialized / pipelined / pooled serving architectures
E-SC      Scenarios — static vs autoscaled pools across the
          time-varying network scenario catalog
E-QS      QoS — classless vs class-aware serving of a mixed
          urllc/embb/best-effort population with handover
========  ==========================================================

Every sharded runner sits behind one protocol:
:class:`~repro.experiments.driver.ExperimentDriver` (``tasks`` /
``aggregate`` / ``metrics``) executed by
:func:`~repro.experiments.driver.run_driver`.  The ``run_*`` functions are
thin compatibility wrappers over it, and the ablation harness binds the
same driver objects via ``ExperimentTarget.from_driver``.
"""

from repro.experiments.driver import ExperimentDriver, run_driver
from repro.experiments.instances import (
    InstanceBundle,
    synthesize_instance,
    synthesize_instances,
    paper_figure6_configurations,
    variables_for,
)
from repro.experiments.fig3_simplification import (
    Figure3Config,
    Figure3Row,
    run_figure3,
    format_figure3_table,
)
from repro.experiments.fig6_distributions import (
    Figure6Config,
    Figure6Driver,
    Figure6Series,
    figure6_tasks,
    run_figure6,
    format_figure6_table,
)
from repro.experiments.fig7_initial_state import (
    Figure7Config,
    Figure7Row,
    run_figure7,
    format_figure7_table,
)
from repro.experiments.fig8_tts import (
    Figure8Config,
    Figure8Driver,
    Figure8Row,
    figure8_tasks,
    run_figure8,
    format_figure8_table,
)
from repro.experiments.headline import (
    HeadlineConfig,
    HeadlineResult,
    run_headline,
    format_headline_report,
)
from repro.experiments.pipeline_study import (
    PipelineStudyConfig,
    PipelineStudyResult,
    run_pipeline_study,
    format_pipeline_table,
)
from repro.experiments.ablation import (
    InitializerAblationConfig,
    InitializerAblationRow,
    run_initializer_ablation,
    format_initializer_table,
    SoftConstraintConfig,
    SoftConstraintRow,
    run_soft_constraint_study,
    format_soft_constraint_table,
)
from repro.experiments.snr_study import (
    SNRStudyConfig,
    SNRStudyDriver,
    SNRStudyRow,
    snr_study_tasks,
    run_snr_study,
    format_snr_table,
)
from repro.experiments.pause_ablation import (
    PauseAblationConfig,
    PauseAblationRow,
    run_pause_ablation,
    format_pause_table,
)
from repro.experiments.load_study import (
    LoadStudyConfig,
    LoadStudyDriver,
    LoadStudyRow,
    LoadStudyResult,
    load_study_tasks,
    run_load_study,
    format_load_study_table,
)
from repro.experiments.scenario_study import (
    ScenarioStudyConfig,
    ScenarioStudyDriver,
    ScenarioStudyRow,
    ScenarioStudyResult,
    scenario_study_tasks,
    run_scenario_study,
    format_scenario_table,
)
from repro.experiments.robustness_study import (
    ROBUSTNESS_AXES,
    RobustnessStudyConfig,
    RobustnessStudyDriver,
    RobustnessRow,
    robustness_tasks,
    run_robustness_study,
    format_robustness_table,
)
from repro.experiments.network_study import (
    PLACEMENTS,
    NetworkStudyConfig,
    NetworkStudyDriver,
    NetworkStudyRow,
    NetworkStudyResult,
    network_study_tasks,
    run_network_study,
    format_network_table,
)
from repro.experiments.qos_study import (
    QOS_ARMS,
    QoSStudyConfig,
    QoSStudyDriver,
    QoSStudyRow,
    QoSStudyResult,
    qos_study_tasks,
    run_qos_study,
    format_qos_table,
)

__all__ = [
    "ExperimentDriver",
    "run_driver",
    "InstanceBundle",
    "synthesize_instance",
    "synthesize_instances",
    "paper_figure6_configurations",
    "variables_for",
    "Figure3Config",
    "Figure3Row",
    "run_figure3",
    "format_figure3_table",
    "Figure6Config",
    "Figure6Driver",
    "Figure6Series",
    "figure6_tasks",
    "run_figure6",
    "format_figure6_table",
    "Figure7Config",
    "Figure7Row",
    "run_figure7",
    "format_figure7_table",
    "Figure8Config",
    "Figure8Driver",
    "Figure8Row",
    "figure8_tasks",
    "run_figure8",
    "format_figure8_table",
    "HeadlineConfig",
    "HeadlineResult",
    "run_headline",
    "format_headline_report",
    "PipelineStudyConfig",
    "PipelineStudyResult",
    "run_pipeline_study",
    "format_pipeline_table",
    "InitializerAblationConfig",
    "InitializerAblationRow",
    "run_initializer_ablation",
    "format_initializer_table",
    "SoftConstraintConfig",
    "SoftConstraintRow",
    "run_soft_constraint_study",
    "format_soft_constraint_table",
    "SNRStudyConfig",
    "SNRStudyDriver",
    "SNRStudyRow",
    "snr_study_tasks",
    "run_snr_study",
    "format_snr_table",
    "PauseAblationConfig",
    "PauseAblationRow",
    "run_pause_ablation",
    "format_pause_table",
    "LoadStudyConfig",
    "LoadStudyDriver",
    "LoadStudyRow",
    "LoadStudyResult",
    "load_study_tasks",
    "run_load_study",
    "format_load_study_table",
    "ScenarioStudyConfig",
    "ScenarioStudyDriver",
    "ScenarioStudyRow",
    "ScenarioStudyResult",
    "scenario_study_tasks",
    "run_scenario_study",
    "format_scenario_table",
    "ROBUSTNESS_AXES",
    "RobustnessStudyConfig",
    "RobustnessStudyDriver",
    "RobustnessRow",
    "robustness_tasks",
    "run_robustness_study",
    "format_robustness_table",
    "PLACEMENTS",
    "NetworkStudyConfig",
    "NetworkStudyDriver",
    "NetworkStudyRow",
    "NetworkStudyResult",
    "network_study_tasks",
    "run_network_study",
    "format_network_table",
    "QOS_ARMS",
    "QoSStudyConfig",
    "QoSStudyDriver",
    "QoSStudyRow",
    "QoSStudyResult",
    "qos_study_tasks",
    "run_qos_study",
    "format_qos_table",
]
