"""Synthesis of MIMO-detection QUBO instances per the paper's protocol.

Section 4.2: "We synthesize 10-20 (QUBO) instances of random MIMO detection
for various user numbers and modulations (BPSK, QPSK, 16-QAM, and 64-QAM)
with unit gain signal and unit gain wireless channel with random phase. [...]
In the experiments, we exclude the wireless noise (AWGN)."

Because the protocol is noiseless, the transmitted symbol vector is an exact
zero-residual solution of the ML objective and therefore a ground state of the
QuAMax QUBO.  :func:`synthesize_instance` exploits that to provide the exact
ground-state energy for instances far too large to brute-force, and verifies
it against exhaustive search for small instances when asked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.qubo.energy import brute_force_minimum
from repro.qubo.model import QUBOModel
from repro.transform.mimo_to_qubo import MIMOQuboEncoding, mimo_to_qubo
from repro.utils.batching import iter_batches
from repro.utils.rng import stable_seed
from repro.wireless.channel import ChannelModel, UnitGainRandomPhaseChannel
from repro.wireless.mimo import MIMOConfig, MIMOTransmission, simulate_transmission
from repro.wireless.modulation import get_modulation

__all__ = [
    "InstanceBundle",
    "synthesize_instance",
    "synthesize_instances",
    "variables_for",
    "users_for_variables",
    "paper_figure6_configurations",
    "instance_qubos",
    "iter_batches",
]


@dataclass(frozen=True)
class InstanceBundle:
    """One synthetic detection instance with its QUBO encoding and ground truth.

    Attributes
    ----------
    transmission:
        The simulated channel use (instance + transmitted payload).
    encoding:
        The QuAMax QUBO encoding of the instance.
    ground_state:
        A ground-state bitstring of the QUBO (the transmitted payload's
        encoding in the noiseless protocol).
    ground_energy:
        Its (negative) QUBO energy.
    verified_exhaustively:
        Whether the ground state was double-checked by brute force.
    """

    transmission: MIMOTransmission
    encoding: MIMOQuboEncoding
    ground_state: np.ndarray
    ground_energy: float
    verified_exhaustively: bool = False

    @property
    def num_variables(self) -> int:
        """QUBO variable count of the instance."""
        return self.encoding.num_variables

    @property
    def modulation(self) -> str:
        """Modulation name of the instance."""
        return self.transmission.instance.modulation

    @property
    def num_users(self) -> int:
        """Number of spatial streams."""
        return self.transmission.instance.num_users

    def describe(self) -> str:
        """One-line description used in benchmark output."""
        return (
            f"{self.num_users}-user {self.modulation} "
            f"({self.num_variables} variables, E_g = {self.ground_energy:.3f})"
        )


def variables_for(num_users: int, modulation: str) -> int:
    """QUBO variable count for a user count and modulation."""
    return num_users * get_modulation(modulation).bits_per_symbol


def users_for_variables(num_variables: int, modulation: str) -> int:
    """User count whose QuAMax encoding has exactly ``num_variables`` variables.

    Raises :class:`ConfigurationError` when the division is not exact (e.g. a
    35-variable 16-QAM problem does not exist).
    """
    bits = get_modulation(modulation).bits_per_symbol
    users, remainder = divmod(num_variables, bits)
    if remainder or users <= 0:
        raise ConfigurationError(
            f"{num_variables} variables is not a whole number of {modulation} users"
        )
    return users


def paper_figure6_configurations(num_variables: int = 36) -> List[Tuple[int, str]]:
    """The (users, modulation) pairs giving ``num_variables``-variable problems.

    Figure 6 uses 36-variable decoding problems for every modulation: 36-user
    BPSK, 18-user QPSK, 9-user 16-QAM and 6-user 64-QAM.
    """
    configurations = []
    for modulation in ("BPSK", "QPSK", "16-QAM", "64-QAM"):
        bits = get_modulation(modulation).bits_per_symbol
        if num_variables % bits == 0:
            configurations.append((num_variables // bits, modulation))
    return configurations


def synthesize_instance(
    num_users: int,
    modulation: str,
    seed: int = 0,
    channel_model: Optional[ChannelModel] = None,
    verify_exhaustively: bool = False,
    exhaustive_limit: int = 20,
) -> InstanceBundle:
    """Synthesize one noiseless MIMO detection instance with known ground truth.

    Parameters
    ----------
    num_users, modulation:
        Link configuration (receive antennas = users, the paper's setting).
    seed:
        Deterministic instance seed; the same seed always yields the same
        instance regardless of call order.
    channel_model:
        Defaults to the paper's unit-gain random-phase channel.
    verify_exhaustively:
        When true and the problem has at most ``exhaustive_limit`` variables,
        the analytically known ground state is cross-checked by brute force.
    """
    config = MIMOConfig(num_users=num_users, modulation=modulation, snr_db=None)
    model = channel_model if channel_model is not None else UnitGainRandomPhaseChannel()
    rng = np.random.default_rng(stable_seed("instance", num_users, modulation, seed))
    transmission = simulate_transmission(config, model, rng)
    encoding = mimo_to_qubo(transmission.instance)

    ground_state = encoding.symbols_to_bits(transmission.transmitted_symbols)
    ground_energy = float(encoding.qubo.energy(ground_state))

    verified = False
    if verify_exhaustively and encoding.num_variables <= exhaustive_limit:
        exact = brute_force_minimum(encoding.qubo, max_variables=exhaustive_limit)
        if exact.energy < ground_energy - 1e-6:
            # Extremely unlikely in the noiseless protocol (would require an
            # exactly degenerate alternative symbol vector), but prefer the
            # exhaustive answer if it ever happens.
            ground_state = exact.assignment
            ground_energy = float(exact.energy)
        verified = True

    return InstanceBundle(
        transmission=transmission,
        encoding=encoding,
        ground_state=np.asarray(ground_state, dtype=np.int8),
        ground_energy=ground_energy,
        verified_exhaustively=verified,
    )


def instance_qubos(bundles: Sequence[InstanceBundle]) -> List[QUBOModel]:
    """The QUBO models of a bundle list, in order.

    Convenience for the experiment drivers, which hand whole instance batches
    to the batched solvers/samplers (``solve_batch`` / ``sample_qubo_batch``)
    instead of looping; chunking to a configured batch size is done with
    :func:`iter_batches` (re-exported here).
    """
    return [bundle.encoding.qubo for bundle in bundles]


def synthesize_instances(
    count: int,
    num_users: int,
    modulation: str,
    base_seed: int = 0,
    channel_model: Optional[ChannelModel] = None,
    verify_exhaustively: bool = False,
) -> List[InstanceBundle]:
    """Synthesize ``count`` independent instances of one configuration."""
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    return [
        synthesize_instance(
            num_users,
            modulation,
            seed=base_seed + index,
            channel_model=channel_model,
            verify_exhaustively=verify_exhaustively,
        )
        for index in range(count)
    ]
