"""Experiment E-NW: city-scale capacity placement on a cell topology.

The scenario study (E-SC) prices elasticity for one cell *cluster* a few
dozen users wide.  This study asks the city-scale question the network layer
(:mod:`repro.network`) exists for: with hundreds of cells and millions of
simulated users, where should the plant's virtual annealer capacity be
embedded — and how much does *moving* it online, against a hotspot detector
fed only O&M counters, buy over leaving it alone?

Per placement arm the study runs the same pipeline on the same per-cell
Poisson counter matrix (:func:`~repro.network.aggregate.cell_window_counts`,
O(cells x windows) memory however many users are simulated):

* **static**   — capacity split equally across cells for the whole run;
* **reactive** — an online loop per KPI window: the
  :class:`~repro.network.kpi.HotspotDetector` scores the window's counters,
  the :class:`~repro.network.embedding.CapacityReembedder` moves bounded
  capacity toward the raised cells;
* **oracle**   — per-window capacity proportional to the *true* offered
  load, the clairvoyant upper bound.

Each schedule is priced by the deterministic fluid model
(:func:`~repro.network.embedding.simulate_fluid_network`).  The reactive arm
additionally *materialises* real detection jobs — but only for the cells the
detector raised (:func:`~repro.network.aggregate.materialize_cell_jobs`) —
and serves them through the event-driven
:class:`~repro.serving.simulator.RANServingSimulator`, closing the loop from
city-scale counters down to per-job deadlines without ever allocating the
city.

Everything is exactly reproducible from ``base_seed``; shards are
arm-independent, so serial and process-pool runs agree bitwise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.experiments.driver import ExperimentDriver, run_driver
from repro.network.aggregate import (
    AggregationConfig,
    cell_window_counts,
    materialize_cell_jobs,
)
from repro.network.embedding import (
    CapacityReembedder,
    EmbeddingConfig,
    FluidNetworkReport,
    oracle_capacity,
    simulate_fluid_network,
    static_capacity,
)
from repro.network.kpi import HotspotDetector, HotspotDetectorConfig
from repro.network.topology import TOPOLOGY_KINDS, build_topology
from repro.parallel import ResultCache, ShardTask
from repro.serving.scenarios import SCENARIO_NAMES, build_scenario
from repro.serving.simulator import RANServingSimulator
from repro.telemetry.log import get_logger
from repro.utils.rng import stable_seed
from repro.wireless.mimo import MIMOConfig

_log = get_logger(__name__)

__all__ = [
    "NETWORK_METRICS",
    "PLACEMENTS",
    "NetworkStudyConfig",
    "NetworkStudyDriver",
    "NetworkStudyRow",
    "NetworkStudyResult",
    "network_study_tasks",
    "run_network_study",
    "format_network_table",
]

#: Placement arms accepted by the study, in canonical order.
PLACEMENTS: Tuple[str, ...] = ("static", "reactive", "oracle")

#: Scalar metric columns of the ``network`` ablation target, in order.
NETWORK_METRICS = (
    "static_miss_rate",
    "reactive_miss_rate",
    "oracle_miss_rate",
    "reactive_vs_static_ratio",
    "reactive_capacity_moved",
    "detection_latency_windows",
    "false_positive_raises",
)


@dataclass(frozen=True)
class NetworkStudyConfig:
    """Configuration of the capacity-placement study.

    The topology rides as ``(topology_kind, rows, cols)`` primitives —
    shards rebuild it via :func:`~repro.network.topology.build_topology`, so
    the configuration stays canonically fingerprintable for the result
    cache.

    Attributes
    ----------
    topology_kind / rows / cols:
        The cell layout (``line`` uses ``rows * cols`` cells).
    users_per_cell:
        Simulated population per cell.  Only rates scale with it — the
        default network simulates one million users in a few MB.
    symbol_period_us / horizon_us / window_us:
        Per-user nominal job spacing, scenario span, and KPI counter window.
    scenario:
        Catalog scenario driving the demand field (see
        :data:`~repro.serving.scenarios.SCENARIO_NAMES`).
    placements:
        Arms to run, each a :data:`PLACEMENTS` entry.
    utilization:
        Network-wide nominal offered load over total capacity; 0.7 embeds
        ~43% headroom — comfortable for every cell except a hotspot.
    deadline_windows:
        Fluid-model deadline, in KPI windows.
    migration_fraction:
        Per-window migration budget as a fraction of total capacity.
    min_capacity_fraction:
        Per-cell capacity floor as a fraction of the equal share.
    detector_alpha / detector_z_threshold / detector_warmup_windows /
    detector_confirm_windows / detector_clear_windows:
        Hotspot-detector knobs (see
        :class:`~repro.network.kpi.HotspotDetectorConfig`).
    detail_max_jobs_per_cell:
        Materialisation cap per raised cell for the reactive arm's detailed
        serving pass (0 disables the pass).
    detail_num_users / detail_modulation / detail_turnaround_us:
        Link shape and deadline of the materialised detail jobs.
    base_seed:
        Root of every derived seed.
    """

    topology_kind: str = "grid"
    rows: int = 10
    cols: int = 10
    users_per_cell: int = 10_000
    symbol_period_us: float = 150.0
    horizon_us: float = 20_000.0
    window_us: float = 500.0
    scenario: str = "flash-crowd"
    placements: Tuple[str, ...] = PLACEMENTS
    utilization: float = 0.7
    deadline_windows: int = 2
    migration_fraction: float = 0.05
    min_capacity_fraction: float = 0.25
    detector_alpha: float = 0.2
    detector_z_threshold: float = 4.0
    detector_warmup_windows: int = 4
    detector_confirm_windows: int = 2
    detector_clear_windows: int = 3
    detail_max_jobs_per_cell: int = 120
    detail_num_users: int = 2
    detail_modulation: str = "QPSK"
    detail_turnaround_us: float = 600.0
    base_seed: int = 0

    def __post_init__(self) -> None:
        if self.topology_kind not in TOPOLOGY_KINDS:
            raise ConfigurationError(
                f"unknown topology_kind {self.topology_kind!r}; choose from "
                f"{', '.join(TOPOLOGY_KINDS)}"
            )
        if self.scenario not in SCENARIO_NAMES:
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r}; catalog: "
                f"{', '.join(SCENARIO_NAMES)}"
            )
        if not self.placements:
            raise ConfigurationError("placements must not be empty")
        for placement in self.placements:
            if placement not in PLACEMENTS:
                raise ConfigurationError(
                    f"unknown placement {placement!r}; choose from "
                    f"{', '.join(PLACEMENTS)}"
                )
        if not 0.0 < self.utilization < 1.0:
            raise ConfigurationError(
                f"utilization must lie in (0, 1), got {self.utilization}"
            )
        if not 0.0 <= self.migration_fraction <= 1.0:
            raise ConfigurationError(
                f"migration_fraction must lie in [0, 1], got {self.migration_fraction}"
            )
        if not 0.0 <= self.min_capacity_fraction <= 1.0:
            raise ConfigurationError(
                "min_capacity_fraction must lie in [0, 1], got "
                f"{self.min_capacity_fraction}"
            )
        if self.detail_max_jobs_per_cell < 0:
            raise ConfigurationError(
                "detail_max_jobs_per_cell must be non-negative, got "
                f"{self.detail_max_jobs_per_cell}"
            )

    @property
    def num_cells(self) -> int:
        """Cells in the layout (``line`` layouts use ``rows * cols``)."""
        return self.rows * self.cols

    @property
    def simulated_users(self) -> int:
        """Total simulated user population."""
        return self.num_cells * self.users_per_cell

    @classmethod
    def quick(cls) -> "NetworkStudyConfig":
        """A minimal configuration used by the test suite and CI smoke."""
        return cls(
            rows=3,
            cols=3,
            users_per_cell=200,
            horizon_us=10_000.0,
            detail_max_jobs_per_cell=40,
        )

    @classmethod
    def city_scale(cls) -> "NetworkStudyConfig":
        """A denser city: 400 cells, four million users (still fast)."""
        return cls(rows=20, cols=20, horizon_us=40_000.0)

    # ``--scale paper`` maps to the densest catalogued configuration.
    paper_scale = city_scale


@dataclass(frozen=True)
class NetworkStudyRow:
    """One placement arm's outcome on the shared counter matrix."""

    placement: str
    scenario: str
    topology_kind: str
    num_cells: int
    simulated_users: int
    num_windows: int
    jobs_offered: int
    miss_rate: float
    missed_jobs: float
    residual_jobs: float
    peak_cell_miss_rate: float
    capacity_moved: float
    hotspot_raises: int
    detection_window: int
    detection_latency_windows: int
    false_positive_raises: int
    mean_hot_cells: float
    detail_jobs: int
    detail_miss_rate: float


@dataclass(frozen=True)
class NetworkStudyResult:
    """Arm rows in ``config.placements`` order."""

    rows: List[NetworkStudyRow]
    config: NetworkStudyConfig


def _embedding_config(
    config: NetworkStudyConfig, aggregation: AggregationConfig
) -> EmbeddingConfig:
    """Size the capacity pool from the nominal offered load and utilization."""
    nominal_per_window = aggregation.cell_rate_per_us * config.window_us
    total = nominal_per_window * config.num_cells / config.utilization
    equal_share = total / config.num_cells
    return EmbeddingConfig(
        total_capacity=total,
        min_capacity=config.min_capacity_fraction * equal_share,
        migration_budget=config.migration_fraction * total,
        deadline_windows=config.deadline_windows,
    )


def _expected_hot_cell(config: NetworkStudyConfig) -> Optional[int]:
    """The cell the scenario's demand singles out, when there is one."""
    if config.scenario in ("flash-crowd", "cell-outage", "busy-day"):
        return config.num_cells // 2
    return None


def _spike_start_window(config: NetworkStudyConfig) -> Optional[int]:
    """First KPI window of the flash-crowd ramp (the detector's stopwatch)."""
    if config.scenario not in ("flash-crowd",):
        return None
    return int(0.25 * config.horizon_us // config.window_us)


def _network_shard(
    config: NetworkStudyConfig, placement: str, workload_seed: int
) -> NetworkStudyRow:
    """One placement arm: counters -> (detector -> embedder) -> fluid model.

    Every arm regenerates the identical counter matrix from
    ``workload_seed``, so arms differ only in the capacity schedule — the
    comparison is paired by construction, and shards stay independent of
    execution order and worker count.
    """
    topology = build_topology(config.topology_kind, config.rows, config.cols)
    scenario = build_scenario(
        config.scenario, topology.num_cells, config.horizon_us, topology=topology
    )
    aggregation = AggregationConfig(
        users_per_cell=config.users_per_cell,
        symbol_period_us=config.symbol_period_us,
        window_us=config.window_us,
    )
    counts = cell_window_counts(scenario, aggregation, rng=workload_seed)
    embedding = _embedding_config(config, aggregation)
    num_windows = counts.shape[0]

    raises: List = []
    capacity_moved = 0.0
    mean_hot_cells = 0.0
    detail_jobs = 0
    detail_miss_rate = 0.0

    if placement == "static":
        plan = static_capacity(topology.num_cells, embedding)
    elif placement == "oracle":
        plan = oracle_capacity(counts, embedding)
    elif placement == "reactive":
        detector = HotspotDetector(
            topology.num_cells,
            HotspotDetectorConfig(
                alpha=config.detector_alpha,
                z_threshold=config.detector_z_threshold,
                warmup_windows=config.detector_warmup_windows,
                confirm_windows=config.detector_confirm_windows,
                clear_windows=config.detector_clear_windows,
            ),
            topology=topology,
        )
        reembedder = CapacityReembedder(topology.num_cells, embedding)
        plan = np.zeros_like(counts, dtype=float)
        hot_window_total = 0
        last_counts: Optional[np.ndarray] = None
        for window in range(num_windows):
            # Strictly causal: the capacity in force during window w is
            # decided from detector state and counters of windows < w.
            plan[window] = reembedder.step(detector.hot_cells, last_counts)
            hot_window_total += len(detector.hot_cells)
            events = detector.observe(
                window, (window + 0.5) * config.window_us, counts[window]
            )
            raises.extend(event for event in events if event.kind == "raised")
            last_counts = counts[window]
        capacity_moved = reembedder.capacity_moved
        mean_hot_cells = hot_window_total / num_windows if num_windows else 0.0
        if raises and config.detail_max_jobs_per_cell > 0:
            hot_cells = sorted({event.cell_id for event in raises})
            jobs = materialize_cell_jobs(
                scenario,
                hot_cells,
                aggregation,
                [MIMOConfig(config.detail_num_users, config.detail_modulation)],
                base_seed=workload_seed,
                max_jobs_per_cell=config.detail_max_jobs_per_cell,
                turnaround_budget_us=config.detail_turnaround_us,
            )
            report = RANServingSimulator(topology=topology).run(jobs)
            detail_jobs = report.num_jobs
            detail_miss_rate = report.deadline_miss_rate or 0.0
    else:  # pragma: no cover - validated by the config
        raise ConfigurationError(f"unknown placement {placement!r}")

    fluid: FluidNetworkReport = simulate_fluid_network(counts, plan, embedding)

    expected = _expected_hot_cell(config)
    spike_start = _spike_start_window(config)
    if expected is None:
        true_raises = []
        false_raises = list(raises)
    else:
        true_raises = [event for event in raises if event.cell_id == expected]
        false_raises = [event for event in raises if event.cell_id != expected]
    detection_window = true_raises[0].window if true_raises else -1
    detection_latency = (
        detection_window - spike_start
        if detection_window >= 0 and spike_start is not None
        else -1
    )

    return NetworkStudyRow(
        placement=placement,
        scenario=config.scenario,
        topology_kind=config.topology_kind,
        num_cells=topology.num_cells,
        simulated_users=config.simulated_users,
        num_windows=num_windows,
        jobs_offered=fluid.offered,
        miss_rate=fluid.miss_rate,
        missed_jobs=fluid.missed,
        residual_jobs=fluid.residual,
        peak_cell_miss_rate=fluid.peak_cell_miss_rate,
        capacity_moved=capacity_moved,
        hotspot_raises=len(raises),
        detection_window=detection_window,
        detection_latency_windows=detection_latency,
        false_positive_raises=len(false_raises),
        mean_hot_cells=mean_hot_cells,
        detail_jobs=detail_jobs,
        detail_miss_rate=detail_miss_rate,
    )


def network_study_tasks(config: NetworkStudyConfig) -> List[ShardTask]:
    """The study's shard list: one task per placement arm.

    Every arm shares the per-scenario workload seed (arms are paired on the
    same counter matrix), and each task's configuration is restricted to its
    own arm so cache fingerprints never depend on which *other* arms the
    study sweeps.
    """
    workload_seed = stable_seed("network-study", config.scenario, config.base_seed)
    tasks: List[ShardTask] = []
    for placement in config.placements:
        shard_config = dataclasses.replace(config, placements=(placement,))
        tasks.append(
            ShardTask(
                key=("network-study", config.scenario, placement),
                fn=_network_shard,
                kwargs={
                    "config": shard_config,
                    "placement": placement,
                    "workload_seed": workload_seed,
                },
            )
        )
    return tasks


def _placement_row(rows, placement: str):
    for row in rows:
        if row.placement == placement:
            return row
    return None


class NetworkStudyDriver(ExperimentDriver):
    """The placement study behind the shared experiment-driver protocol."""

    name = "network"
    metric_names = NETWORK_METRICS

    def tasks(self, config: NetworkStudyConfig) -> List[ShardTask]:
        return network_study_tasks(config)

    def aggregate(
        self, config: NetworkStudyConfig, results: List[NetworkStudyRow]
    ) -> NetworkStudyResult:
        return NetworkStudyResult(rows=list(results), config=config)

    def metrics(self, rows) -> Tuple[Tuple[str, float], ...]:
        static = _placement_row(rows, "static")
        reactive = _placement_row(rows, "reactive")
        oracle = _placement_row(rows, "oracle")
        nan = float("nan")
        static_miss = static.miss_rate if static else nan
        reactive_miss = reactive.miss_rate if reactive else nan
        if static and reactive and static.miss_rate > 0:
            ratio = reactive.miss_rate / static.miss_rate
        else:
            ratio = nan
        return (
            ("static_miss_rate", static_miss),
            ("reactive_miss_rate", reactive_miss),
            ("oracle_miss_rate", oracle.miss_rate if oracle else nan),
            ("reactive_vs_static_ratio", ratio),
            ("reactive_capacity_moved", reactive.capacity_moved if reactive else nan),
            (
                "detection_latency_windows",
                float(reactive.detection_latency_windows) if reactive else nan,
            ),
            (
                "false_positive_raises",
                float(reactive.false_positive_raises) if reactive else nan,
            ),
        )

    def progress(self, config, tasks, results) -> None:
        for row in results:
            telemetry.emit_progress(
                "network-study", row.placement, miss_rate=row.miss_rate
            )


def run_network_study(
    config: NetworkStudyConfig = NetworkStudyConfig(),
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> NetworkStudyResult:
    """Score every placement arm on the shared city-scale counter matrix.

    ``workers`` shards the arms across a process pool (results are
    bitwise-identical to the serial path at any worker count) and ``cache``
    reuses shard results across runs; see :mod:`repro.parallel`.
    """
    _log.info(
        "network_study.start",
        cells=config.num_cells,
        users=config.simulated_users,
        placements=len(config.placements),
        workers=workers or 1,
    )
    return run_driver(NetworkStudyDriver(), config, workers=workers, cache=cache)


def format_network_table(result: NetworkStudyResult) -> str:
    """Render the placement comparison as a text table."""
    config = result.config
    lines = [
        "Network capacity study - static vs reactive vs oracle placement",
        f"{config.topology_kind} topology, {config.num_cells} cells, "
        f"{config.simulated_users:,} simulated users, scenario "
        f"{config.scenario!r}, horizon {config.horizon_us / 1000.0:.1f} ms",
        f"utilization {config.utilization:.2f}, migration budget "
        f"{config.migration_fraction:.2%} of capacity per "
        f"{config.window_us:.0f} us window",
        "",
        f"{'placement':<10} {'miss rate':>10} {'peak cell':>10} "
        f"{'moved':>12} {'raises':>7} {'latency(w)':>10} {'detail miss':>12}",
    ]
    for row in result.rows:
        latency = str(row.detection_latency_windows) if row.placement == "reactive" else "-"
        detail = (
            f"{row.detail_miss_rate:.4f}" if row.detail_jobs else "-"
        )
        lines.append(
            f"{row.placement:<10} {row.miss_rate:>10.4f} "
            f"{row.peak_cell_miss_rate:>10.4f} {row.capacity_moved:>12.1f} "
            f"{row.hotspot_raises:>7d} {latency:>10} {detail:>12}"
        )
    return "\n".join(lines)
