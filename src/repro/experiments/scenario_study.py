"""Experiment E-SC: the scenario catalog, static vs autoscaled pools.

The load study (E-SV) sweeps *stationary* offered load.  This study sweeps
the **scenario catalog** (:mod:`repro.serving.scenarios`): every named
time-varying scenario — diurnal waves, flash crowds, hotspot drift, cell
outages — is served twice by the same plant,

* **static** — a fixed pool of ``static_workers`` annealer workers (plus the
  classical fallbacks), the PR-2 architecture; and
* **autoscaled** — an :class:`~repro.serving.autoscale.ElasticBackendPool`
  whose active annealer worker count flexes between ``min_workers`` and
  ``max_workers`` under the queue-depth / deadline-pressure control loop of
  :class:`~repro.serving.autoscale.AutoscaleController` (with a warm-up
  latency on newly added workers).

Per scenario the study reports deadline-miss rates, p99 latencies, the
autoscaled run's time-weighted mean active workers and its scaling-event
count — showing where elasticity buys misses back (bursty scenarios) and
where it merely saves capacity (quiet ones).  Everything is timing-modelled
and exactly reproducible from the configuration's seed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.experiments.driver import ExperimentDriver, mean_or_nan, run_driver
from repro.parallel import ResultCache, ShardTask
from repro.telemetry.log import get_logger
from repro.serving.autoscale import (
    AutoscaleConfig,
    AutoscaleController,
    ElasticBackendPool,
)
from repro.serving.backends import AnnealerServingBackend, ClassicalServingBackend
from repro.serving.pool import BackendPool
from repro.serving.report import ServingReport, format_serving_report
from repro.serving.scenarios import SCENARIO_NAMES, build_scenario
from repro.serving.simulator import RANServingSimulator
from repro.serving.workload import generate_serving_jobs, uniform_cell_profiles
from repro.utils.rng import stable_seed
from repro.wireless.mimo import MIMOConfig

_log = get_logger(__name__)

__all__ = [
    "SCENARIOS_METRICS",
    "ScenarioStudyConfig",
    "ScenarioStudyDriver",
    "ScenarioStudyRow",
    "ScenarioStudyResult",
    "collect_scenario_rows",
    "scenario_study_tasks",
    "run_scenario_study",
    "format_scenario_table",
]

#: Scalar metric columns of the ``scenarios`` ablation target, in order.
SCENARIOS_METRICS = (
    "autoscaled_miss_rate_mean",
    "autoscaled_miss_rate_max",
    "static_miss_rate_mean",
    "autoscaled_p99_us_max",
    "mean_active_workers_mean",
    "scale_events_total",
)


@dataclass(frozen=True)
class ScenarioStudyConfig:
    """Configuration of the scenario-catalog sweep.

    Attributes
    ----------
    num_cells / users_per_cell / num_users / modulations:
        Cell grid and user population (configurations cycle across users).
    base_symbol_period_us:
        Nominal per-user channel-use spacing at intensity multiplier 1.0.
    horizon_us:
        Simulated-time span every scenario is instantiated over.
    max_jobs_per_user:
        Per-user job ceiling (scenario demand sets the realised count).
    scenarios:
        Catalog names to sweep (see :data:`repro.serving.SCENARIO_NAMES`).
    turnaround_budget_us / num_reads / lanes / max_batch_size / policy /
    classical_workers / admission_control:
        Plant knobs shared by both arms.
    static_workers:
        Annealer worker count of the static arm.
    min_workers / max_workers / warmup_us / autoscale_interval_us:
        Elastic-arm bounds and control-loop parameters.
    """

    num_cells: int = 4
    users_per_cell: int = 3
    num_users: int = 2
    modulations: Tuple[str, ...] = ("QPSK", "16-QAM")
    base_symbol_period_us: float = 150.0
    horizon_us: float = 20_000.0
    max_jobs_per_user: int = 900
    scenarios: Tuple[str, ...] = SCENARIO_NAMES
    turnaround_budget_us: float = 600.0
    num_reads: int = 30
    lanes: int = 4
    max_batch_size: Optional[int] = 4
    policy: str = "edf"
    classical_workers: int = 1
    admission_control: bool = True
    static_workers: int = 2
    min_workers: int = 1
    max_workers: int = 6
    warmup_us: float = 400.0
    autoscale_interval_us: float = 200.0
    base_seed: int = 0

    @classmethod
    def quick(cls) -> "ScenarioStudyConfig":
        """A minimal configuration used by the test suite and CI smoke."""
        return cls(
            num_cells=2,
            users_per_cell=2,
            horizon_us=6_000.0,
            max_jobs_per_user=60,
            scenarios=("steady", "flash-crowd"),
            num_reads=10,
            max_workers=3,
        )

    @classmethod
    def paper_scale(cls) -> "ScenarioStudyConfig":
        """A denser grid over a larger cell layout (slow)."""
        return cls(
            num_cells=8,
            users_per_cell=4,
            horizon_us=60_000.0,
            max_jobs_per_user=1200,
            static_workers=3,
            max_workers=10,
        )


@dataclass(frozen=True)
class ScenarioStudyRow:
    """Static vs autoscaled serving outcomes for one catalog scenario."""

    scenario: str
    num_jobs: int
    offered_load_jobs_per_ms: float
    static_miss_rate: float
    autoscaled_miss_rate: float
    static_p99_us: float
    autoscaled_p99_us: float
    mean_active_workers: float
    scale_events: int
    autoscaled_demotion_rate: float


@dataclass(frozen=True)
class ScenarioStudyResult:
    """Sweep rows plus the autoscaled detail report of the last scenario."""

    rows: List[ScenarioStudyRow]
    detail: ServingReport
    config: ScenarioStudyConfig


def _annealer(config: ScenarioStudyConfig) -> AnnealerServingBackend:
    return AnnealerServingBackend(num_reads=config.num_reads, lanes=config.lanes)


def _scenario_jobs(config: ScenarioStudyConfig, name: str, workload_seed: int):
    scenario = build_scenario(name, config.num_cells, horizon_us=config.horizon_us)
    configs = [MIMOConfig(config.num_users, modulation) for modulation in config.modulations]
    profiles = uniform_cell_profiles(
        num_cells=config.num_cells,
        users_per_cell=config.users_per_cell,
        configs=configs,
        symbol_period_us=config.base_symbol_period_us,
        arrival_process="poisson",
        turnaround_budget_us=config.turnaround_budget_us,
    )
    jobs = generate_serving_jobs(
        profiles,
        config.max_jobs_per_user,
        rng=workload_seed,
        scenario=scenario,
    )
    if not jobs:
        raise ConfigurationError(
            f"scenario {name!r} produced no jobs; increase horizon_us or lower "
            "base_symbol_period_us"
        )
    return jobs


def _scenario_shard(
    config: ScenarioStudyConfig, arm: str, workload_seed: int
) -> ServingReport:
    """One (scenario, arm) shard of the catalog sweep.

    ``config.scenarios`` holds exactly the shard's scenario, and every bit of
    shard randomness flows through ``workload_seed`` (the explicitly derived
    per-scenario child seed) — the simulation itself is timing-modelled and
    deterministic.  Shards are therefore independent of execution order and
    worker count, and the (function, config, seed) triple is the shard's
    complete cache identity.
    """
    if len(config.scenarios) != 1:
        raise ConfigurationError(
            f"a scenario shard serves exactly one scenario, got {config.scenarios!r}"
        )
    name = config.scenarios[0]
    jobs = _scenario_jobs(config, name, workload_seed)

    if arm == "static":
        static_backends: List = [_annealer(config)] * config.static_workers
        static_backends += [ClassicalServingBackend()] * config.classical_workers
        return RANServingSimulator(
            pool=BackendPool(static_backends),
            policy=config.policy,
            max_batch_size=config.max_batch_size,
            admission_control=config.admission_control,
        ).run(jobs)
    if arm == "autoscaled":
        controller = AutoscaleController(
            AutoscaleConfig(
                interval_us=config.autoscale_interval_us,
                warmup_us=config.warmup_us,
                min_workers=config.min_workers,
                max_workers=config.max_workers,
            )
        )
        return RANServingSimulator(
            pool=ElasticBackendPool(
                annealer=_annealer(config),
                max_annealer_workers=config.max_workers,
                initial_annealer_workers=config.min_workers,
                num_classical_workers=config.classical_workers,
            ),
            policy=config.policy,
            max_batch_size=config.max_batch_size,
            admission_control=config.admission_control,
            autoscaler=controller,
        ).run(jobs)
    raise ConfigurationError(f"arm must be 'static' or 'autoscaled', got {arm!r}")


def scenario_study_tasks(config: ScenarioStudyConfig) -> List[ShardTask]:
    """The sweep's shard list: one (scenario, arm) task per catalog entry.

    Each task's configuration is the study configuration restricted to its
    own scenario, and its workload seed is the per-scenario child seed the
    serial path derives — so a task's cache fingerprint never depends on
    *which other* scenarios the sweep contains, and editing the catalog
    re-keys only the touched entries.
    """
    tasks: List[ShardTask] = []
    for name in config.scenarios:
        shard_config = dataclasses.replace(config, scenarios=(name,))
        workload_seed = stable_seed("scenario-study", name, config.base_seed)
        for arm in ("static", "autoscaled"):
            tasks.append(
                ShardTask(
                    key=("scenario-study", name, arm),
                    fn=_scenario_shard,
                    kwargs={
                        "config": shard_config,
                        "arm": arm,
                        "workload_seed": workload_seed,
                    },
                )
            )
    return tasks


class ScenarioStudyDriver(ExperimentDriver):
    """The catalog sweep behind the shared experiment-driver protocol."""

    name = "scenarios"
    metric_names = SCENARIOS_METRICS

    def tasks(self, config: ScenarioStudyConfig) -> List[ShardTask]:
        return scenario_study_tasks(config)

    def aggregate(
        self, config: ScenarioStudyConfig, results: List[ServingReport]
    ) -> ScenarioStudyResult:
        return ScenarioStudyResult(
            rows=collect_scenario_rows(config, list(results)),
            detail=results[-1] if results else None,
            config=config,
        )

    def metrics(self, rows) -> Tuple[Tuple[str, float], ...]:
        autoscaled = [row.autoscaled_miss_rate for row in rows]
        return (
            ("autoscaled_miss_rate_mean", mean_or_nan(autoscaled)),
            ("autoscaled_miss_rate_max", max(autoscaled, default=float("nan"))),
            (
                "static_miss_rate_mean",
                mean_or_nan([row.static_miss_rate for row in rows]),
            ),
            (
                "autoscaled_p99_us_max",
                max((row.autoscaled_p99_us for row in rows), default=float("nan")),
            ),
            (
                "mean_active_workers_mean",
                mean_or_nan([row.mean_active_workers for row in rows]),
            ),
            ("scale_events_total", float(sum(row.scale_events for row in rows))),
        )

    def progress(self, config, tasks, results) -> None:
        for position, name in enumerate(config.scenarios):
            autoscaled = results[2 * position + 1]
            telemetry.emit_progress(
                "scenario-study", name, miss_rate=autoscaled.deadline_miss_rate or 0.0
            )


def run_scenario_study(
    config: ScenarioStudyConfig = ScenarioStudyConfig(),
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> ScenarioStudyResult:
    """Serve every catalog scenario with the static and autoscaled pools.

    ``workers`` shards the sweep across a process pool (results are
    bitwise-identical to the serial path at any worker count) and ``cache``
    reuses shard results across runs; see :mod:`repro.parallel`.
    """
    if not config.scenarios:
        raise ConfigurationError("scenarios must not be empty")
    if config.static_workers < 1:
        raise ConfigurationError(
            f"static_workers must be at least 1, got {config.static_workers}"
        )

    _log.info("scenario_study.start", scenarios=len(config.scenarios), workers=workers or 1)
    return run_driver(ScenarioStudyDriver(), config, workers=workers, cache=cache)


def collect_scenario_rows(
    config: ScenarioStudyConfig, reports: List[ServingReport]
) -> List[ScenarioStudyRow]:
    """Pair the (static, autoscaled) shard reports back into catalog rows.

    Shared by :func:`run_scenario_study` and the ablation-target binding, so
    the declarative harness reports exactly the rows the imperative driver
    does.
    """
    rows: List[ScenarioStudyRow] = []
    for position, name in enumerate(config.scenarios):
        static = reports[2 * position]
        autoscaled = reports[2 * position + 1]
        rows.append(
            ScenarioStudyRow(
                scenario=name,
                num_jobs=autoscaled.num_jobs,
                offered_load_jobs_per_ms=autoscaled.offered_load_jobs_per_ms,
                static_miss_rate=static.deadline_miss_rate or 0.0,
                autoscaled_miss_rate=autoscaled.deadline_miss_rate or 0.0,
                static_p99_us=static.p99_latency_us,
                autoscaled_p99_us=autoscaled.p99_latency_us,
                mean_active_workers=autoscaled.metadata["autoscale_average_active"],
                scale_events=autoscaled.metadata["autoscale_events"],
                autoscaled_demotion_rate=autoscaled.demotion_rate,
            )
        )
    return rows


def format_scenario_table(result: ScenarioStudyResult) -> str:
    """Render the catalog sweep plus the last autoscaled report as text."""
    config = result.config
    lines = [
        "RAN scenario study - static vs autoscaled pools across the catalog",
        f"{config.num_cells} cells x {config.users_per_cell} users, horizon "
        f"{config.horizon_us / 1000.0:.1f} ms, budget "
        f"{config.turnaround_budget_us:.0f} us, policy {config.policy}; static = "
        f"{config.static_workers} workers, autoscaled = "
        f"[{config.min_workers}, {config.max_workers}] workers "
        f"(warm-up {config.warmup_us:.0f} us)",
        f"{'scenario':>14}  {'jobs':>5}  {'jobs/ms':>8}  {'miss(static)':>12}  "
        f"{'miss(auto)':>10}  {'p99(static)':>11}  {'p99(auto)':>9}  "
        f"{'mean K':>6}  {'scales':>6}  {'demoted':>7}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.scenario:>14}  {row.num_jobs:>5d}  "
            f"{row.offered_load_jobs_per_ms:>8.2f}  {row.static_miss_rate:>12.3f}  "
            f"{row.autoscaled_miss_rate:>10.3f}  {row.static_p99_us:>11.1f}  "
            f"{row.autoscaled_p99_us:>9.1f}  {row.mean_active_workers:>6.2f}  "
            f"{row.scale_events:>6d}  {row.autoscaled_demotion_rate:>7.3f}"
        )
    lines.append("")
    lines.append(
        format_serving_report(
            result.detail,
            title=f"autoscaled serving report for scenario {result.rows[-1].scenario!r}",
        )
    )
    return "\n".join(lines)
