"""Ablation experiments: initialiser quality (E-AB1) and soft constraints (E-F4).

Two studies that quantify design choices the paper discusses but does not
fully evaluate:

* **Initialiser ablation** — Section 5 proposes replacing Greedy Search with
  application-specific classical solvers (zero-forcing, MMSE, sphere
  decoders) to obtain better initial states for reverse annealing.  The study
  measures each initialiser's ΔE_IS% and the hybrid's success probability.

* **Soft-information constraints** — Section 3.1 / Figure 4 explores adding
  penalty terms derived from soft information; the paper reports it is "not
  currently practical" because constraint factors are hard to choose on a
  noisy analog machine.  The study sweeps the constraint strength with
  correct and partially incorrect pre-knowledge, recording whether the global
  optimum survives the augmentation and how the solver's success rate moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.classical.greedy import GreedySearchSolver
from repro.classical.mmse import MMSEDetector
from repro.classical.sphere_decoder import FixedComplexitySphereDecoder, KBestSphereDecoder
from repro.classical.zero_forcing import ZeroForcingDetector
from repro.experiments.instances import InstanceBundle, synthesize_instance
from repro.hybrid.solver import DetectorInitializer, HybridQuboSolver
from repro.metrics.quality import delta_e_percent
from repro.qubo.constraints import SoftConstraint, add_soft_constraints
from repro.qubo.energy import brute_force_minimum
from repro.utils.rng import stable_seed

__all__ = [
    "InitializerAblationConfig",
    "InitializerAblationRow",
    "run_initializer_ablation",
    "format_initializer_table",
    "SoftConstraintConfig",
    "SoftConstraintRow",
    "run_soft_constraint_study",
    "format_soft_constraint_table",
]


# --------------------------------------------------------------------------- #
# E-AB1: initialiser quality ablation
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class InitializerAblationConfig:
    """Configuration of the initialiser ablation."""

    num_users: int = 6
    modulation: str = "16-QAM"
    switch_s: float = 0.45
    num_reads: int = 200
    instance_seed: int = 2
    base_seed: int = 0
    initializers: Tuple[str, ...] = ("greedy", "zero-forcing", "mmse", "k-best", "fcsd")

    @classmethod
    def quick(cls) -> "InitializerAblationConfig":
        """A minimal configuration used by the test suite."""
        return cls(num_users=3, num_reads=60, initializers=("greedy", "zero-forcing"))


@dataclass(frozen=True)
class InitializerAblationRow:
    """Hybrid performance with one classical initialiser."""

    initializer: str
    initial_quality_percent: float
    initial_found_optimum: bool
    success_probability: float
    best_energy: float
    classical_time_us: float


def _build_initializer(name: str, bundle: InstanceBundle):
    """Instantiate the requested initialiser for one instance."""
    encoding = bundle.encoding
    if name == "greedy":
        return GreedySearchSolver()
    if name == "zero-forcing":
        return DetectorInitializer(ZeroForcingDetector(), encoding, modelled_time_us=2.0)
    if name == "mmse":
        return DetectorInitializer(MMSEDetector(), encoding, modelled_time_us=2.0)
    if name == "k-best":
        return DetectorInitializer(KBestSphereDecoder(k_best=8), encoding, modelled_time_us=5.0)
    if name == "fcsd":
        return DetectorInitializer(
            FixedComplexitySphereDecoder(full_expansion_levels=1), encoding, modelled_time_us=4.0
        )
    raise ValueError(f"unknown initializer {name!r}")


def run_initializer_ablation(
    config: InitializerAblationConfig = InitializerAblationConfig(),
    sampler: Optional[QuantumAnnealerSimulator] = None,
    bundle: Optional[InstanceBundle] = None,
) -> List[InitializerAblationRow]:
    """Compare reverse annealing seeded by different classical initialisers."""
    instance = bundle if bundle is not None else synthesize_instance(
        config.num_users, config.modulation, seed=config.instance_seed
    )
    annealer = sampler if sampler is not None else QuantumAnnealerSimulator(
        seed=stable_seed("ablation", config.base_seed)
    )
    qubo = instance.encoding.qubo
    ground = instance.ground_energy

    rows: List[InitializerAblationRow] = []
    for name in config.initializers:
        initializer = _build_initializer(name, instance)
        hybrid = HybridQuboSolver(
            classical_solver=initializer,
            sampler=annealer,
            switch_s=config.switch_s,
            num_reads=config.num_reads,
        )
        result = hybrid.solve(qubo, rng=stable_seed("ablation-run", name, config.base_seed))
        initial_quality = delta_e_percent(result.initial_solution.energy, ground)
        rows.append(
            InitializerAblationRow(
                initializer=name,
                initial_quality_percent=initial_quality,
                initial_found_optimum=bool(
                    result.initial_solution.energy <= ground + 1e-6
                ),
                success_probability=result.sampleset.success_probability(ground),
                best_energy=result.best_energy,
                classical_time_us=result.classical_time_us,
            )
        )
    return rows


def format_initializer_table(rows: Sequence[InitializerAblationRow]) -> str:
    """Render the initialiser ablation as an aligned text table."""
    lines = [
        "Ablation - classical initialisers for reverse annealing (paper Sec. 5)",
        f"{'initializer':>14}  {'dE_IS%':>7}  {'init==opt':>9}  {'p* after RA':>11}  "
        f"{'classical time (us)':>19}",
    ]
    for row in rows:
        lines.append(
            f"{row.initializer:>14}  {row.initial_quality_percent:>7.2f}  "
            f"{str(row.initial_found_optimum):>9}  {row.success_probability:>11.3f}  "
            f"{row.classical_time_us:>19.2f}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# E-F4: soft-information constraint study
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SoftConstraintConfig:
    """Configuration of the soft-constraint study."""

    num_users: int = 4
    modulation: str = "16-QAM"
    strengths: Tuple[float, ...] = (0.0, 0.5, 2.0, 8.0)
    wrong_pairs: int = 1
    num_reads: int = 200
    switch_s: float = 0.41
    instance_seed: int = 3
    base_seed: int = 0

    @classmethod
    def quick(cls) -> "SoftConstraintConfig":
        """A minimal configuration used by the test suite."""
        return cls(num_users=2, strengths=(0.0, 1.0), num_reads=60)


@dataclass(frozen=True)
class SoftConstraintRow:
    """Effect of one constraint strength on the augmented problem."""

    strength: float
    knowledge: str
    optimum_preserved: bool
    success_probability: float
    expectation_delta_e: float


def _pair_constraints(
    bundle: InstanceBundle, strength: float, wrong_pairs: int
) -> Tuple[List[SoftConstraint], List[SoftConstraint]]:
    """Constraints from correct pre-knowledge and from partially wrong pre-knowledge."""
    ground = bundle.ground_state
    num_variables = ground.size
    pairs = [(index, index + 1) for index in range(0, num_variables - 1, 2)]

    correct = [
        SoftConstraint(
            variables=(i, j),
            targets=(int(ground[i]), int(ground[j])),
            strength=strength,
        )
        for i, j in pairs
    ]
    wrong: List[SoftConstraint] = []
    for count, (i, j) in enumerate(pairs):
        targets = (int(ground[i]), int(ground[j]))
        if count < wrong_pairs:
            targets = (1 - targets[0], 1 - targets[1])
        wrong.append(SoftConstraint(variables=(i, j), targets=targets, strength=strength))
    return correct, wrong


def run_soft_constraint_study(
    config: SoftConstraintConfig = SoftConstraintConfig(),
    sampler: Optional[QuantumAnnealerSimulator] = None,
    bundle: Optional[InstanceBundle] = None,
) -> List[SoftConstraintRow]:
    """Sweep constraint strength with correct and partially wrong pre-knowledge."""
    instance = bundle if bundle is not None else synthesize_instance(
        config.num_users, config.modulation, seed=config.instance_seed
    )
    annealer = sampler if sampler is not None else QuantumAnnealerSimulator(
        seed=stable_seed("soft-constraints", config.base_seed)
    )
    qubo = instance.encoding.qubo
    ground_energy = instance.ground_energy
    ground_state = instance.ground_state

    rows: List[SoftConstraintRow] = []
    for strength in config.strengths:
        variants = [("none", [])] if strength == 0.0 else []
        if strength > 0.0:
            correct, wrong = _pair_constraints(instance, strength, config.wrong_pairs)
            variants = [("correct", correct), ("partially-wrong", wrong)]
        for knowledge, constraints in variants:
            augmented = add_soft_constraints(qubo, constraints) if constraints else qubo
            # Does the original optimum remain a ground state of the augmented model?
            if augmented.num_variables <= 22:
                exact = brute_force_minimum(augmented, max_variables=22)
                preserved = bool(
                    abs(augmented.energy(ground_state) - exact.energy) <= 1e-6
                )
            else:
                preserved = bool(
                    augmented.energy(ground_state) <= qubo.energy(ground_state) + 1e-6
                )
            sampleset = annealer.forward_anneal(
                augmented, num_reads=config.num_reads, pause_s=config.switch_s
            )
            # Success is judged on the ORIGINAL objective: did the augmented
            # search return the true detection optimum?
            original_energies = qubo.energies(
                np.array([record.assignment for record in sampleset.records])
            )
            weights = sampleset.occurrences()
            hits = sum(
                int(count)
                for energy, count in zip(original_energies, weights)
                if energy <= ground_energy + 1e-6
            )
            success = hits / sampleset.num_reads
            expectation = delta_e_percent(
                float(np.average(original_energies, weights=weights)), ground_energy
            )
            rows.append(
                SoftConstraintRow(
                    strength=float(strength),
                    knowledge=knowledge,
                    optimum_preserved=preserved,
                    success_probability=float(success),
                    expectation_delta_e=float(expectation),
                )
            )
    return rows


def format_soft_constraint_table(rows: Sequence[SoftConstraintRow]) -> str:
    """Render the soft-constraint study as an aligned text table."""
    lines = [
        "Figure 4 / Sec 3.1 - soft-information constraint augmentation",
        f"{'strength':>8}  {'knowledge':>15}  {'optimum preserved':>17}  "
        f"{'p* (original obj)':>17}  {'E[dE%]':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row.strength:>8.2f}  {row.knowledge:>15}  {str(row.optimum_preserved):>17}  "
            f"{row.success_probability:>17.3f}  {row.expectation_delta_e:>7.2f}"
        )
    return "\n".join(lines)
