"""The unified experiment-driver protocol shared by every study entry point.

Historically each experiment module grew its own ``run_*`` function around
the same skeleton — build :class:`~repro.parallel.ShardTask` units, hand
them to one :class:`~repro.parallel.ParallelRunner` call, emit progress
telemetry, and reassemble the driver's result type — plus a hand-written
adapter in :mod:`repro.ablation.targets` re-stating the same pieces for the
declarative harness.  :class:`ExperimentDriver` names that skeleton once:

* :meth:`~ExperimentDriver.tasks` — ``config -> ShardTask list``, the same
  shard builder the result cache fingerprints;
* :meth:`~ExperimentDriver.aggregate` — ``(config, shard results) -> result``,
  a pure function of its inputs (no telemetry, no logging), so the
  declarative harness can call it per study point;
* :meth:`~ExperimentDriver.rows` — the tidy row view of a result (what the
  ablation harness tabulates and the golden fixtures freeze);
* :meth:`~ExperimentDriver.metrics` — scalar summary columns over the rows;
* :meth:`~ExperimentDriver.progress` — the driver's progress-telemetry
  side effects, kept out of :meth:`aggregate` so imperative runs emit
  exactly what they always did while study points stay silent.

:func:`run_driver` is the one shared execution path: the imperative
``run_*`` entry points are thin wrappers over it (input validation and
their ``*.start`` log line stay in the wrapper, so logs and telemetry are
bitwise-identical to the pre-protocol drivers), and
:meth:`repro.ablation.registry.ExperimentTarget.from_driver` binds the same
object into the declarative harness.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel import ParallelRunner, ResultCache, ShardTask

__all__ = [
    "ExperimentDriver",
    "run_driver",
    "finite_min_or_nan",
    "mean_or_nan",
]


def finite_min_or_nan(values: Sequence[float]) -> float:
    """Minimum of the finite values, NaN when there are none."""
    finite = [value for value in values if math.isfinite(value)]
    return min(finite) if finite else float("nan")


def mean_or_nan(values: Sequence[float]) -> float:
    """Arithmetic mean, NaN for an empty sequence."""
    return float(np.mean(values)) if len(values) else float("nan")


class ExperimentDriver(ABC):
    """One experiment behind the shared ``tasks / aggregate / metrics`` API.

    Subclasses set :attr:`name` (the registry key a
    :class:`~repro.ablation.registry.ExperimentTarget` binding uses) and
    :attr:`metric_names` (the declaration-ordered names
    :meth:`metrics` emits; empty for experiments the ablation harness does
    not sweep), and implement :meth:`tasks` and :meth:`aggregate`.
    """

    #: Registry key of the experiment (the ablation spec's ``experiment``).
    name: str = ""
    #: Names :meth:`metrics` emits, in declaration order.
    metric_names: Tuple[str, ...] = ()

    @abstractmethod
    def tasks(self, config: Any) -> Sequence[ShardTask]:
        """The experiment's shard list for ``config``, in canonical order."""

    @abstractmethod
    def aggregate(self, config: Any, results: Sequence[Any]) -> Any:
        """Reassemble the experiment's result from shard results.

        Must be a pure function of ``(config, results)`` — no telemetry, no
        logging — so the declarative harness can reuse it per study point.
        """

    def rows(self, result: Any) -> Sequence[Any]:
        """The tidy row sequence of a result.

        Defaults to ``result.rows`` when the result carries one (the
        ``*StudyResult`` containers) and to the result itself otherwise
        (drivers whose aggregate already is a row list).
        """
        rows = getattr(result, "rows", None)
        if rows is not None:
            return rows
        return list(result)

    def metrics(self, rows: Sequence[Any]) -> Tuple[Tuple[str, float], ...]:
        """Scalar summary metrics over the tidy rows, in declaration order.

        The default is no metrics — only experiments registered with the
        ablation harness need them.
        """
        return ()

    def progress(
        self, config: Any, tasks: Sequence[ShardTask], results: Sequence[Any]
    ) -> None:
        """Emit the driver's progress telemetry after the sharded run.

        Called by :func:`run_driver` with the executed tasks and their
        results in task order; the default emits nothing.
        """
        return None


def run_driver(
    driver: ExperimentDriver,
    config: Any,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Any:
    """Execute one experiment driver end to end and return its result.

    ``workers`` shards the driver's task list across a process pool (results
    are bitwise-identical to the serial path at any worker count) and
    ``cache`` reuses shard results across runs — and across the declarative
    harness, which builds the same work units; see :mod:`repro.parallel`.
    """
    tasks: List[ShardTask] = list(driver.tasks(config))
    results = ParallelRunner(workers=workers, cache=cache).run_sharded(tasks)
    driver.progress(config, tasks, results)
    return driver.aggregate(config, results)
