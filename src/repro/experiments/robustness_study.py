"""Extension experiment E-X3: detection robustness under channel impairments.

Every paper figure and serving study answers "how fast" over idealized
channels; this study answers "how robust".  One link configuration is swept
along four impairment axes from :mod:`repro.wireless.fading` — spatial
correlation rho, user velocity (Jakes-Doppler temporal fading), pilot CSI
error variance, and inter-cell interference power — and at each grid point
the linear detectors (zero-forcing, MMSE) and the hybrid Greedy Search +
reverse annealing detector decode a coherent stream of channel uses.

Because imperfect CSI and interference make the analytic ground energy
unavailable, each channel use's QUBO optimum is established by an exhaustive
solve of the (estimated-channel) QUBO, so the hybrid detector's
optimum-detection rate stays well defined across the whole sweep.  Each grid
point is one :class:`~repro.parallel.ShardTask` whose configuration is
restricted to its own point, so the sweep shards onto the
:class:`~repro.parallel.ParallelRunner` with bitwise serial/parallel
equality and per-grid-point cache keys: editing one point of one axis
recomputes exactly that point.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.classical.exhaustive import ExhaustiveSolver
from repro.classical.mmse import MMSEDetector
from repro.classical.zero_forcing import ZeroForcingDetector
from repro.exceptions import ConfigurationError
from repro.experiments.driver import ExperimentDriver, mean_or_nan, run_driver
from repro.hybrid.solver import HybridMIMODetector
from repro.parallel import ResultCache, ShardTask
from repro.telemetry.log import get_logger
from repro.transform.mimo_to_qubo import is_optimum, mimo_to_qubo
from repro.utils.batching import iter_batches
from repro.utils.rng import ensure_rng, stable_seed
from repro.wireless.channel import effective_noise_variance
from repro.wireless.fading import ChannelImpairments, FadingProcess
from repro.wireless.metrics import bit_error_rate
from repro.wireless.mimo import MIMOConfig, simulate_transmission

_log = get_logger(__name__)

__all__ = [
    "ROBUSTNESS_AXES",
    "ROBUSTNESS_METRICS",
    "RobustnessStudyConfig",
    "RobustnessStudyDriver",
    "RobustnessRow",
    "robustness_tasks",
    "run_robustness_study",
    "format_robustness_table",
]

#: The four impairment axes, in sweep order.
ROBUSTNESS_AXES = ("correlation", "doppler", "csi-error", "interference")

#: Scalar metric columns of the robustness ablation target, in order.
ROBUSTNESS_METRICS = (
    "hybrid_ber_mean",
    "mmse_ber_mean",
    "zero_forcing_ber_mean",
    "hybrid_optimum_rate_mean",
    "hybrid_time_us_mean",
    "hybrid_time_us_p95",
)

#: Maps each axis to its grid field on :class:`RobustnessStudyConfig`.
_AXIS_FIELDS = {
    "correlation": "correlation_grid",
    "doppler": "velocity_grid_mps",
    "csi-error": "csi_error_grid",
    "interference": "interference_grid",
}


@dataclass(frozen=True)
class RobustnessStudyConfig:
    """Configuration of the impairment sweep.

    Attributes
    ----------
    num_users, num_receive_antennas, modulation, snr_db:
        Link configuration; the default 3x5 QPSK link at 14 dB keeps the
        exhaustive QUBO reference (64 states) trivial while leaving every
        detector short of error-free.
    channel_uses_per_point:
        Length of the coherent block stream decoded per grid point.  The
        stream evolves through one :class:`~repro.wireless.fading.FadingProcess`,
        so the Doppler axis genuinely decorrelates successive uses.
    correlation_grid:
        Spatial correlation rho applied to both arrays (Kronecker model).
    velocity_grid_mps:
        User velocities; translated through the Jakes model at
        ``carrier_frequency_ghz`` / ``block_period_us``.
    csi_error_grid:
        Pilot estimation-error variances (QUBOs are built from the
        estimate; symbols propagate through the true channel).
    interference_grid:
        Inter-cell interference powers, in units of the AWGN variance
        convention (the MMSE detector regularises on noise + interference).
    batch_size:
        Channel uses per batched hybrid submission; ``None`` submits a
        point's whole stream as one batch.  Per-use child generators keep
        the results identical for every grouping.
    """

    num_users: int = 3
    num_receive_antennas: int = 5
    modulation: str = "QPSK"
    snr_db: float = 14.0
    channel_uses_per_point: int = 8
    num_reads: int = 100
    switch_s: float = 0.45
    base_seed: int = 0
    batch_size: Optional[int] = None
    correlation_grid: Tuple[float, ...] = (0.0, 0.3, 0.6, 0.9)
    velocity_grid_mps: Tuple[float, ...] = (0.0, 3.0, 30.0, 120.0)
    csi_error_grid: Tuple[float, ...] = (0.0, 0.02, 0.1, 0.3)
    interference_grid: Tuple[float, ...] = (0.0, 0.5, 2.0)
    carrier_frequency_ghz: float = 3.5
    block_period_us: float = 71.4

    @classmethod
    def quick(cls) -> "RobustnessStudyConfig":
        """A minimal configuration used by the test suite and CI smoke."""
        return cls(
            num_users=2,
            num_receive_antennas=4,
            channel_uses_per_point=2,
            num_reads=40,
            correlation_grid=(0.0, 0.9),
            velocity_grid_mps=(0.0, 120.0),
            csi_error_grid=(0.0, 0.3),
            interference_grid=(0.0, 2.0),
        )

    @classmethod
    def paper_scale(cls) -> "RobustnessStudyConfig":
        """Denser grids and longer coherent streams (slow)."""
        return cls(
            channel_uses_per_point=40,
            num_reads=400,
            correlation_grid=(0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95),
            velocity_grid_mps=(0.0, 1.5, 3.0, 10.0, 30.0, 60.0, 120.0),
            csi_error_grid=(0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3),
            interference_grid=(0.0, 0.25, 0.5, 1.0, 2.0, 4.0),
        )


@dataclass(frozen=True)
class RobustnessRow:
    """Detector quality at one (axis, value) impairment grid point."""

    axis: str
    value: float
    channel_uses: int
    zero_forcing_ber: float
    mmse_ber: float
    hybrid_ber: float
    hybrid_optimum_rate: float
    hybrid_time_us: float


def _impairments_for(
    config: RobustnessStudyConfig, axis: str, value: float
) -> ChannelImpairments:
    """The impairment configuration of one grid point (one axis active)."""
    if axis == "correlation":
        return ChannelImpairments(rx_correlation=value, tx_correlation=value)
    if axis == "doppler":
        return ChannelImpairments.from_mobility(
            value,
            carrier_frequency_ghz=config.carrier_frequency_ghz,
            block_period_us=config.block_period_us,
        )
    if axis == "csi-error":
        return ChannelImpairments(csi_error_variance=value)
    if axis == "interference":
        return ChannelImpairments(interference_power=value)
    raise ConfigurationError(
        f"unknown robustness axis {axis!r}; axes: {', '.join(ROBUSTNESS_AXES)}"
    )


def _robustness_point(
    config: RobustnessStudyConfig,
    axis: str,
    value: float,
    annealer: QuantumAnnealerSimulator,
) -> RobustnessRow:
    """Decode one coherent stream under one impairment grid point.

    Channel synthesis walks the point's fading process use by use (block
    ``i`` depends on blocks ``0..i-1`` exactly as physics demands), each use
    drawing from its own explicit child seed; detection randomness flows
    through separate per-use children, so the row is independent of the
    hybrid submission batching.
    """
    impairments = _impairments_for(config, axis, value)
    mimo_config = MIMOConfig(
        num_users=config.num_users,
        modulation=config.modulation,
        num_receive_antennas=config.num_receive_antennas,
        snr_db=float(config.snr_db),
    )
    zero_forcing = ZeroForcingDetector()
    mmse = MMSEDetector(
        noise_variance=effective_noise_variance(
            mimo_config.noise_variance, impairments.interference_power
        )
    )
    hybrid = HybridMIMODetector(
        sampler=annealer,
        switch_s=config.switch_s,
        num_reads=config.num_reads,
    )
    exhaustive = ExhaustiveSolver()

    process = FadingProcess(config.num_receive_antennas, config.num_users, impairments)
    seeds = [
        stable_seed("robustness-use", axis, value, index, config.base_seed)
        for index in range(config.channel_uses_per_point)
    ]
    transmissions = []
    for seed in seeds:
        generator = ensure_rng(seed)
        channel = process.advance(generator)
        transmissions.append(
            simulate_transmission(
                mimo_config,
                rng=generator,
                impairments=impairments,
                channel_matrix=channel,
            )
        )
    encodings = [mimo_to_qubo(transmission.instance) for transmission in transmissions]
    # The estimated-channel QUBO's true optimum, independent of impairments.
    grounds = [exhaustive.solve(encoding.qubo).energy for encoding in encodings]

    zf_errors: List[float] = []
    mmse_errors: List[float] = []
    hybrid_errors: List[float] = []
    optimum_hits: List[bool] = []
    hybrid_times: List[float] = []

    for transmission, encoding in zip(transmissions, encodings):
        zf_bits = encoding.payload_bits(
            encoding.symbols_to_bits(zero_forcing.detect(transmission.instance))
        )
        zf_errors.append(bit_error_rate(transmission.transmitted_bits, zf_bits))
        mmse_bits = encoding.payload_bits(
            encoding.symbols_to_bits(mmse.detect(transmission.instance))
        )
        mmse_errors.append(bit_error_rate(transmission.transmitted_bits, mmse_bits))

    for start, chunk in iter_batches(transmissions, config.batch_size):
        details = hybrid.detect_batch_with_details(
            [transmission.instance for transmission in chunk],
            rng=[ensure_rng(seed + 1) for seed in seeds[start : start + len(chunk)]],
        )
        for offset, (detection, solver_result) in enumerate(details):
            transmission = chunk[offset]
            ground = grounds[start + offset]
            hybrid_errors.append(bit_error_rate(transmission.transmitted_bits, detection.bits))
            optimum_hits.append(is_optimum(solver_result.best_energy, ground))
            hybrid_times.append(solver_result.total_time_us)

    return RobustnessRow(
        axis=axis,
        value=float(value),
        channel_uses=config.channel_uses_per_point,
        zero_forcing_ber=float(np.mean(zf_errors)),
        mmse_ber=float(np.mean(mmse_errors)),
        hybrid_ber=float(np.mean(hybrid_errors)),
        hybrid_optimum_rate=float(np.mean(optimum_hits)),
        hybrid_time_us=float(np.mean(hybrid_times)),
    )


def _axis_grid(config: RobustnessStudyConfig, axis: str) -> Tuple[float, ...]:
    try:
        return tuple(getattr(config, _AXIS_FIELDS[axis]))
    except KeyError:
        raise ConfigurationError(
            f"unknown robustness axis {axis!r}; axes: {', '.join(ROBUSTNESS_AXES)}"
        ) from None


def _robustness_point_shard(
    config: RobustnessStudyConfig, axis: str, batch_size: Optional[int] = None
) -> RobustnessRow:
    """One grid-point shard; the config's axis grid holds exactly the point.

    ``batch_size`` arrives outside the fingerprinted config (results are
    proven batch-size-invariant, so the cache key must not depend on it).
    """
    grid = _axis_grid(config, axis)
    if len(grid) != 1:
        raise ConfigurationError(
            f"a robustness shard sweeps exactly one {axis} point, got {grid!r}"
        )
    config = dataclasses.replace(config, batch_size=batch_size)
    annealer = QuantumAnnealerSimulator(
        seed=stable_seed("robustness-study", axis, config.base_seed)
    )
    return _robustness_point(config, axis, float(grid[0]), annealer)


def robustness_tasks(config: RobustnessStudyConfig) -> List[ShardTask]:
    """The sweep's shard list: one task per (axis, value) grid point.

    Each task's configuration keeps only its own point (every other axis
    grid is emptied), so adding, removing or editing one grid point re-keys
    only that point on a cached re-run — the selective-invalidation contract
    the cache tests pin down.  The batch-size-invariant ``batch_size``
    travels outside the fingerprint.
    """
    empty = {field: () for field in _AXIS_FIELDS.values()}
    tasks: List[ShardTask] = []
    for axis in ROBUSTNESS_AXES:
        for value in _axis_grid(config, axis):
            shard_config = dataclasses.replace(
                config,
                batch_size=None,
                **{**empty, _AXIS_FIELDS[axis]: (float(value),)},
            )
            tasks.append(
                ShardTask(
                    key=("robustness", axis, float(value)),
                    fn=_robustness_point_shard,
                    kwargs={
                        "config": shard_config,
                        "axis": axis,
                        "batch_size": config.batch_size,
                    },
                    fingerprint_exclude=("batch_size",),
                )
            )
    return tasks


class RobustnessStudyDriver(ExperimentDriver):
    """The impairment sweep behind the shared experiment-driver protocol."""

    name = "robustness"
    metric_names = ROBUSTNESS_METRICS

    def tasks(self, config: RobustnessStudyConfig) -> List[ShardTask]:
        return robustness_tasks(config)

    def aggregate(
        self, config: RobustnessStudyConfig, results: Sequence[RobustnessRow]
    ) -> List[RobustnessRow]:
        return list(results)

    def metrics(self, rows: Sequence[RobustnessRow]) -> Tuple[Tuple[str, float], ...]:
        times = [row.hybrid_time_us for row in rows]
        return (
            ("hybrid_ber_mean", mean_or_nan([row.hybrid_ber for row in rows])),
            ("mmse_ber_mean", mean_or_nan([row.mmse_ber for row in rows])),
            (
                "zero_forcing_ber_mean",
                mean_or_nan([row.zero_forcing_ber for row in rows]),
            ),
            (
                "hybrid_optimum_rate_mean",
                mean_or_nan([row.hybrid_optimum_rate for row in rows]),
            ),
            ("hybrid_time_us_mean", mean_or_nan(times)),
            (
                "hybrid_time_us_p95",
                float(np.percentile(times, 95)) if times else float("nan"),
            ),
        )

    def progress(self, config, tasks, results) -> None:
        for row in results:
            telemetry.emit_progress(
                "robustness-study", (row.axis, row.value), hybrid_ber=row.hybrid_ber
            )


def run_robustness_study(
    config: RobustnessStudyConfig = RobustnessStudyConfig(),
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[RobustnessRow]:
    """Sweep the four impairment axes and return one row per grid point.

    ``workers`` shards the grid across a process pool (results are
    bitwise-identical to the serial path at any worker count) and ``cache``
    reuses point results across runs; see :mod:`repro.parallel`.
    """
    _log.info(
        "robustness_study.start", points=len(robustness_tasks(config)), workers=workers or 1
    )
    return run_driver(RobustnessStudyDriver(), config, workers=workers, cache=cache)


_AXIS_LABELS = {
    "correlation": "spatial correlation rho",
    "doppler": "velocity (m/s)",
    "csi-error": "CSI error variance",
    "interference": "interference power",
}


def format_robustness_table(rows: Sequence[RobustnessRow]) -> str:
    """Render the impairment sweep as an aligned text table, one axis block each."""
    lines = ["Extension - detection robustness under channel impairments"]
    for axis in ROBUSTNESS_AXES:
        axis_rows = [row for row in rows if row.axis == axis]
        if not axis_rows:
            continue
        lines.append("")
        lines.append(f"{_AXIS_LABELS.get(axis, axis)}:")
        lines.append(
            f"{'value':>8}  {'uses':>5}  {'ZF BER':>7}  {'MMSE BER':>8}  "
            f"{'hybrid BER':>10}  {'P(opt)':>7}  {'time (us)':>9}"
        )
        for row in axis_rows:
            lines.append(
                f"{row.value:>8.3f}  {row.channel_uses:>5}  "
                f"{row.zero_forcing_ber:>7.3f}  {row.mmse_ber:>8.3f}  "
                f"{row.hybrid_ber:>10.3f}  {row.hybrid_optimum_rate:>7.3f}  "
                f"{row.hybrid_time_us:>9.1f}"
            )
    return "\n".join(lines)
