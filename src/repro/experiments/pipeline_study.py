"""Experiment E-F2: quantifying the pipelined hybrid architecture (Figure 2).

Figure 2 of the paper is a conceptual sketch: successive wireless channel
uses flow through staged classical and quantum processing units so the two
kinds of hardware work concurrently.  This experiment turns the sketch into
numbers by running the same channel-use stream through the
:class:`repro.hybrid.HybridPipelineSimulator` twice — once pipelined, once
with the two stages serialised — and comparing throughput, latency and stage
utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.hybrid.pipeline import HybridPipelineSimulator, PipelineReport
from repro.utils.rng import stable_seed
from repro.wireless.mimo import MIMOConfig
from repro.wireless.traffic import TrafficGenerator

__all__ = [
    "PipelineStudyConfig",
    "PipelineStudyResult",
    "run_pipeline_study",
    "format_pipeline_table",
]


@dataclass(frozen=True)
class PipelineStudyConfig:
    """Configuration of the pipeline study.

    Attributes
    ----------
    num_users, modulation:
        Per-channel-use detection problem size.
    num_channel_uses:
        Length of the simulated traffic trace.
    symbol_period_us:
        Channel-use spacing (71.4 us matches an LTE OFDM symbol; the 5G NR
        numerologies the paper's introduction targets are shorter).
    num_reads:
        Reverse-annealing reads per channel use (the quantum stage's batch).
    evaluate_solutions:
        Whether the annealer actually runs per channel use (slower but lets
        the report include detection quality).
    batch_size:
        Channel uses per batched solver/sampler submission (``None`` = whole
        trace at once); forwarded to
        :class:`~repro.hybrid.HybridPipelineSimulator`.
    """

    num_users: int = 4
    modulation: str = "16-QAM"
    num_channel_uses: int = 12
    symbol_period_us: float = 71.4
    arrival_process: str = "deterministic"
    turnaround_budget_us: Optional[float] = 500.0
    switch_s: float = 0.41
    num_reads: int = 20
    include_qpu_overheads: bool = False
    evaluate_solutions: bool = True
    base_seed: int = 0
    batch_size: Optional[int] = None

    @classmethod
    def quick(cls) -> "PipelineStudyConfig":
        """A minimal configuration used by the test suite."""
        return cls(num_users=2, num_channel_uses=4, num_reads=5, evaluate_solutions=False)


@dataclass(frozen=True)
class PipelineStudyResult:
    """Pipelined vs serial reports for the same channel-use stream."""

    pipelined: PipelineReport
    serial: PipelineReport

    @property
    def throughput_gain(self) -> float:
        """Pipelined throughput divided by serial throughput."""
        return self.pipelined.throughput_jobs_per_ms / self.serial.throughput_jobs_per_ms

    @property
    def latency_ratio(self) -> float:
        """Pipelined mean latency divided by serial mean latency."""
        return self.pipelined.mean_latency_us / self.serial.mean_latency_us


def run_pipeline_study(
    config: PipelineStudyConfig = PipelineStudyConfig(),
    sampler: Optional[QuantumAnnealerSimulator] = None,
) -> PipelineStudyResult:
    """Run the pipelined and serial simulations on an identical traffic trace."""
    annealer = sampler if sampler is not None else QuantumAnnealerSimulator(
        seed=stable_seed("pipeline", config.base_seed)
    )
    mimo_config = MIMOConfig(num_users=config.num_users, modulation=config.modulation)
    traffic = TrafficGenerator(
        mimo_config,
        symbol_period_us=config.symbol_period_us,
        arrival_process=config.arrival_process,
        turnaround_budget_us=config.turnaround_budget_us,
    )
    channel_uses = traffic.generate(
        config.num_channel_uses, rng=stable_seed("pipeline-traffic", config.base_seed)
    )

    simulator = HybridPipelineSimulator(
        sampler=annealer,
        switch_s=config.switch_s,
        num_reads=config.num_reads,
        include_qpu_overheads=config.include_qpu_overheads,
        evaluate_solutions=config.evaluate_solutions,
        batch_size=config.batch_size,
    )
    pipelined = simulator.run(
        channel_uses, pipelined=True, rng=stable_seed("pipeline-run", config.base_seed)
    )
    serial = simulator.run(
        channel_uses, pipelined=False, rng=stable_seed("serial-run", config.base_seed)
    )
    return PipelineStudyResult(pipelined=pipelined, serial=serial)


def format_pipeline_table(result: PipelineStudyResult) -> str:
    """Render the pipelined vs serial comparison as an aligned text table."""
    rows = [
        ("mean latency (us)", "mean_latency_us"),
        ("p95 latency (us)", "p95_latency_us"),
        ("throughput (jobs/ms)", "throughput_jobs_per_ms"),
        ("classical utilisation", "classical_utilization"),
        ("quantum utilisation", "quantum_utilization"),
    ]
    lines = [
        "Figure 2 - pipelined vs serial hybrid processing of successive channel uses",
        f"{'metric':>24}  {'pipelined':>12}  {'serial':>12}",
    ]
    for label, attribute in rows:
        pipelined_value = getattr(result.pipelined, attribute)
        serial_value = getattr(result.serial, attribute)
        lines.append(f"{label:>24}  {pipelined_value:>12.3f}  {serial_value:>12.3f}")
    if result.pipelined.deadline_miss_rate is not None:
        lines.append(
            f"{'deadline miss rate':>24}  {result.pipelined.deadline_miss_rate:>12.3f}  "
            f"{result.serial.deadline_miss_rate:>12.3f}"
        )
    lines.append(
        f"throughput gain from pipelining: {result.throughput_gain:.2f}x, "
        f"latency ratio: {result.latency_ratio:.2f}"
    )
    return "\n".join(lines)
