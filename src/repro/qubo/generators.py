"""Random QUBO / Ising instance generators.

The paper's experiments use MIMO-detection QUBOs produced by the QuAMax
transform (see :mod:`repro.transform`), but the solver stack and its tests
also need structure-free instances: dense/sparse random QUBOs, random Ising
spin glasses, and *planted-solution* models whose ground state is known by
construction (invaluable for verifying samplers without exhaustive search).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.qubo.ising import IsingModel, ising_to_qubo, bits_to_spins
from repro.qubo.model import QUBOModel
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["random_qubo", "random_ising", "planted_solution_qubo"]


def random_qubo(
    num_variables: int,
    density: float = 1.0,
    coefficient_scale: float = 1.0,
    rng: RandomState = None,
) -> QUBOModel:
    """Draw a random QUBO with Gaussian coefficients.

    Parameters
    ----------
    num_variables:
        Problem size.
    density:
        Probability that each off-diagonal coupling is present (1.0 gives a
        fully dense model, matching the density of MIMO-detection QUBOs).
    coefficient_scale:
        Standard deviation of the Gaussian coefficients.
    """
    if num_variables < 0:
        raise ConfigurationError(f"num_variables must be non-negative, got {num_variables}")
    if not 0.0 <= density <= 1.0:
        raise ConfigurationError(f"density must lie in [0, 1], got {density}")
    if coefficient_scale <= 0:
        raise ConfigurationError(f"coefficient_scale must be positive, got {coefficient_scale}")

    generator = ensure_rng(rng)
    matrix = np.zeros((num_variables, num_variables))
    diagonal = generator.normal(0.0, coefficient_scale, size=num_variables)
    matrix[np.diag_indices(num_variables)] = diagonal
    for i in range(num_variables):
        for j in range(i + 1, num_variables):
            if generator.random() < density:
                matrix[i, j] = generator.normal(0.0, coefficient_scale)
    return QUBOModel(coefficients=matrix)


def random_ising(
    num_spins: int,
    density: float = 1.0,
    coupling_scale: float = 1.0,
    field_scale: float = 0.5,
    rng: RandomState = None,
) -> IsingModel:
    """Draw a random Ising spin glass with Gaussian fields and couplings."""
    if num_spins < 0:
        raise ConfigurationError(f"num_spins must be non-negative, got {num_spins}")
    if not 0.0 <= density <= 1.0:
        raise ConfigurationError(f"density must lie in [0, 1], got {density}")

    generator = ensure_rng(rng)
    fields = generator.normal(0.0, field_scale, size=num_spins)
    couplings = np.zeros((num_spins, num_spins))
    for i in range(num_spins):
        for j in range(i + 1, num_spins):
            if generator.random() < density:
                couplings[i, j] = generator.normal(0.0, coupling_scale)
    return IsingModel(fields=fields, couplings=couplings)


def planted_solution_qubo(
    planted_bits: Sequence[int],
    coupling_strength: float = 1.0,
    field_strength: float = 0.25,
    density: float = 1.0,
    rng: RandomState = None,
) -> QUBOModel:
    """Construct a QUBO whose unique ground state is ``planted_bits``.

    The construction plants a ferromagnetic-like Ising model aligned with the
    planted spin configuration: every included coupling ``J_ij`` is negative
    along ``s_i s_j`` (i.e. ``J_ij * s_i * s_j = -|J|``), and every spin gets a
    small field aligned with it.  Any disagreement with the planted state
    strictly increases the energy, so the planted state is the unique ground
    state for any positive strengths.
    """
    bits = np.asarray(planted_bits, dtype=int).ravel()
    if bits.size == 0:
        raise ConfigurationError("planted_bits must be non-empty")
    if not np.all(np.isin(bits, (0, 1))):
        raise ConfigurationError("planted_bits must contain only 0/1 values")
    if coupling_strength < 0 or field_strength < 0:
        raise ConfigurationError("strengths must be non-negative")
    if coupling_strength == 0 and field_strength == 0:
        raise ConfigurationError("at least one of the strengths must be positive")
    if not 0.0 <= density <= 1.0:
        raise ConfigurationError(f"density must lie in [0, 1], got {density}")

    generator = ensure_rng(rng)
    spins = bits_to_spins(bits).astype(float)
    n = bits.size

    fields = -field_strength * spins
    couplings = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            if generator.random() < density:
                couplings[i, j] = -coupling_strength * spins[i] * spins[j]

    ising = IsingModel(fields=fields, couplings=couplings)
    qubo = ising_to_qubo(ising)
    return qubo
