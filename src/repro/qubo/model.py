"""The QUBO model container (paper Eq. 1).

A QUBO instance is an upper-triangular real matrix ``Q``; the objective is

    E(q) = sum_{i <= j} Q[i, j] * q_i * q_j,      q_i in {0, 1}.

:class:`QUBOModel` normalises arbitrary square coefficient matrices to the
upper-triangular convention (symmetric or lower-triangular input is folded
upward), evaluates energies for single assignments and batches, and supports
the algebraic operations the rest of the library needs: fixing variables,
adding constraint terms, relabelling, and conversion to the Ising form
(through :mod:`repro.qubo.ising`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionError

__all__ = ["QUBOModel"]


def _to_upper_triangular(matrix: np.ndarray) -> np.ndarray:
    """Fold a square coefficient matrix into the upper-triangular convention."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DimensionError(
            f"QUBO coefficients must form a square matrix, got shape {matrix.shape}"
        )
    upper = np.triu(matrix)
    lower = np.tril(matrix, k=-1)
    return upper + lower.T


@dataclass(frozen=True)
class QUBOModel:
    """An immutable QUBO instance.

    Parameters
    ----------
    coefficients:
        Square matrix of QUBO coefficients.  Any square matrix is accepted;
        entries below the diagonal are folded onto their transpose position so
        the stored matrix is always upper-triangular.
    offset:
        Constant added to every energy (arises when variables are fixed or
        when converting from Ising form).
    variable_names:
        Optional labels (defaults to ``q0..qN-1``); used by the MIMO transform
        to record which payload bit each variable represents.
    """

    coefficients: np.ndarray
    offset: float = 0.0
    variable_names: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        matrix = _to_upper_triangular(self.coefficients)
        object.__setattr__(self, "coefficients", matrix)
        object.__setattr__(self, "offset", float(self.offset))
        names = tuple(self.variable_names) if self.variable_names else tuple(
            f"q{i}" for i in range(matrix.shape[0])
        )
        if len(names) != matrix.shape[0]:
            raise DimensionError(
                f"{len(names)} variable names supplied for {matrix.shape[0]} variables"
            )
        object.__setattr__(self, "variable_names", names)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dict(
        cls,
        linear: Mapping[int, float],
        quadratic: Mapping[Tuple[int, int], float],
        num_variables: Optional[int] = None,
        offset: float = 0.0,
    ) -> "QUBOModel":
        """Build a model from sparse linear/quadratic coefficient mappings."""
        indices = set(linear)
        for i, j in quadratic:
            indices.add(i)
            indices.add(j)
        size = num_variables if num_variables is not None else (max(indices) + 1 if indices else 0)
        matrix = np.zeros((size, size), dtype=float)
        for i, value in linear.items():
            matrix[i, i] += value
        for (i, j), value in quadratic.items():
            if i == j:
                matrix[i, i] += value
            elif i < j:
                matrix[i, j] += value
            else:
                matrix[j, i] += value
        return cls(coefficients=matrix, offset=offset)

    @classmethod
    def empty(cls, num_variables: int) -> "QUBOModel":
        """An all-zero QUBO on ``num_variables`` variables."""
        return cls(coefficients=np.zeros((num_variables, num_variables)))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_variables(self) -> int:
        """Number of binary variables."""
        return int(self.coefficients.shape[0])

    @property
    def linear(self) -> np.ndarray:
        """Diagonal (linear) coefficients as a copy."""
        return np.diagonal(self.coefficients).copy()

    @property
    def quadratic(self) -> Dict[Tuple[int, int], float]:
        """Sparse mapping of strictly-upper-triangular nonzero couplings."""
        couplings: Dict[Tuple[int, int], float] = {}
        rows, cols = np.nonzero(np.triu(self.coefficients, k=1))
        for i, j in zip(rows.tolist(), cols.tolist()):
            couplings[(i, j)] = float(self.coefficients[i, j])
        return couplings

    def coupling(self, i: int, j: int) -> float:
        """Coefficient of the ``q_i q_j`` term (order-insensitive)."""
        if i == j:
            return float(self.coefficients[i, i])
        low, high = (i, j) if i < j else (j, i)
        return float(self.coefficients[low, high])

    def neighbourhood(self, index: int) -> Dict[int, float]:
        """Nonzero couplings touching variable ``index`` (excluding its linear term)."""
        result: Dict[int, float] = {}
        for j in range(self.num_variables):
            if j == index:
                continue
            value = self.coupling(index, j)
            if value != 0.0:
                result[j] = value
        return result

    def density(self) -> float:
        """Fraction of possible off-diagonal couplings that are nonzero."""
        n = self.num_variables
        if n < 2:
            return 0.0
        possible = n * (n - 1) / 2
        return len(self.quadratic) / possible

    def max_abs_coefficient(self) -> float:
        """Largest absolute coefficient (used for auto-scaling chain strength)."""
        if self.num_variables == 0:
            return 0.0
        return float(np.max(np.abs(self.coefficients)))

    # ------------------------------------------------------------------ #
    # Energy evaluation
    # ------------------------------------------------------------------ #

    def energy(self, assignment: Sequence[int]) -> float:
        """Energy of one 0/1 assignment (including the offset)."""
        vector = np.asarray(assignment, dtype=float).ravel()
        if vector.size != self.num_variables:
            raise DimensionError(
                f"assignment has {vector.size} entries, expected {self.num_variables}"
            )
        return float(vector @ self.coefficients @ vector + self.offset)

    def energies(self, assignments: np.ndarray) -> np.ndarray:
        """Vectorised energies for a batch of assignments (rows)."""
        batch = np.atleast_2d(np.asarray(assignments, dtype=float))
        if batch.shape[1] != self.num_variables:
            raise DimensionError(
                f"assignments have {batch.shape[1]} columns, expected {self.num_variables}"
            )
        return np.einsum("bi,ij,bj->b", batch, self.coefficients, batch) + self.offset

    def energy_delta_flip(self, assignment: np.ndarray, index: int) -> float:
        """Energy change from flipping variable ``index`` in ``assignment``.

        Used by local-search solvers (greedy descent, tabu, simulated
        annealing) to avoid recomputing full energies on every move.
        """
        vector = np.asarray(assignment, dtype=float).ravel()
        if not 0 <= index < self.num_variables:
            raise IndexError(f"variable index {index} out of range")
        current = vector[index]
        new = 1.0 - current
        row = self.coefficients[index, :]
        col = self.coefficients[:, index]
        interaction = row @ vector + col @ vector - 2 * self.coefficients[index, index] * current
        linear = self.coefficients[index, index]
        delta_from_zero_to_one = linear + interaction
        return float(delta_from_zero_to_one if new == 1.0 else -delta_from_zero_to_one)

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #

    def add(self, other: "QUBOModel") -> "QUBOModel":
        """Sum of two QUBOs on the same variable set."""
        if other.num_variables != self.num_variables:
            raise DimensionError(
                f"cannot add QUBOs with {self.num_variables} and {other.num_variables} variables"
            )
        return QUBOModel(
            coefficients=self.coefficients + other.coefficients,
            offset=self.offset + other.offset,
            variable_names=self.variable_names,
        )

    def scale(self, factor: float) -> "QUBOModel":
        """Multiply every coefficient (and the offset) by ``factor``."""
        return QUBOModel(
            coefficients=self.coefficients * factor,
            offset=self.offset * factor,
            variable_names=self.variable_names,
        )

    def fix_variables(self, assignments: Mapping[int, int]) -> "QUBOModel":
        """Return the reduced QUBO obtained by fixing some variables.

        Fixing ``q_i = v`` removes variable ``i``; its contributions move into
        the offset (constant part) and into the linear terms of the remaining
        variables it coupled to.  Variable names of surviving variables are
        preserved.
        """
        for index, value in assignments.items():
            if not 0 <= index < self.num_variables:
                raise IndexError(f"variable index {index} out of range")
            if value not in (0, 1):
                raise ValueError(f"fixed value for variable {index} must be 0 or 1, got {value}")

        keep = [i for i in range(self.num_variables) if i not in assignments]
        new_size = len(keep)
        new_matrix = np.zeros((new_size, new_size), dtype=float)
        new_offset = self.offset
        position = {old: new for new, old in enumerate(keep)}

        for i in range(self.num_variables):
            for j in range(i, self.num_variables):
                value = self.coefficients[i, j]
                if value == 0.0:
                    continue
                i_fixed = i in assignments
                j_fixed = j in assignments
                if i_fixed and j_fixed:
                    new_offset += value * assignments[i] * assignments[j]
                elif i_fixed:
                    new_matrix[position[j], position[j]] += value * assignments[i]
                elif j_fixed:
                    new_matrix[position[i], position[i]] += value * assignments[j]
                else:
                    new_matrix[position[i], position[j]] += value

        names = tuple(self.variable_names[i] for i in keep)
        return QUBOModel(coefficients=new_matrix, offset=new_offset, variable_names=names)

    def relabel(self, names: Sequence[str]) -> "QUBOModel":
        """Return a copy with new variable names."""
        return QUBOModel(
            coefficients=self.coefficients.copy(),
            offset=self.offset,
            variable_names=tuple(names),
        )

    def subqubo(self, indices: Iterable[int]) -> "QUBOModel":
        """Restriction of the model to a subset of variables (others dropped)."""
        index_list = list(indices)
        matrix = self.coefficients[np.ix_(index_list, index_list)]
        names = tuple(self.variable_names[i] for i in index_list)
        return QUBOModel(coefficients=matrix, offset=self.offset, variable_names=names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QUBOModel):
            return NotImplemented
        return (
            self.num_variables == other.num_variables
            and np.allclose(self.coefficients, other.coefficients)
            and np.isclose(self.offset, other.offset)
            and self.variable_names == other.variable_names
        )

    def __hash__(self) -> int:
        return hash((self.num_variables, round(self.offset, 12), self.variable_names))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QUBOModel(num_variables={self.num_variables}, "
            f"couplings={len(self.quadratic)}, offset={self.offset:.4g})"
        )
