"""Energy evaluation utilities and exact (brute-force) minimisation.

The paper's metrics (ΔE%, success probability, TTS) are all defined relative
to the *ground-state* energy of each QUBO instance, which for the studied
sizes (up to ~48 variables at full scale, up to ~24 in the default benchmark
configurations) we obtain exactly.  :func:`brute_force_minimum` enumerates the
space in vectorised blocks so that 20–24 variable instances remain fast in
pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.qubo.ising import IsingModel
from repro.qubo.model import QUBOModel

__all__ = [
    "qubo_energy",
    "ising_energy",
    "energy_landscape",
    "brute_force_minimum",
    "BruteForceResult",
    "enumerate_assignments",
]

#: Hard ceiling on exhaustive enumeration (2**28 states ~ 268M evaluations).
_MAX_EXHAUSTIVE_VARIABLES = 28

#: Number of assignments evaluated per vectorised block.
_BLOCK_BITS = 16


def qubo_energy(qubo: QUBOModel, assignment: Sequence[int]) -> float:
    """Energy of a 0/1 assignment under a QUBO (thin convenience wrapper)."""
    return qubo.energy(assignment)


def ising_energy(ising: IsingModel, spins: Sequence[int]) -> float:
    """Energy of a +/-1 assignment under an Ising model (convenience wrapper)."""
    return ising.energy(spins)


def enumerate_assignments(
    num_variables: int, block_bits: int = _BLOCK_BITS
) -> Iterator[np.ndarray]:
    """Yield all 0/1 assignments of ``num_variables`` variables in blocks.

    Each yielded array has shape (block, num_variables).  Enumeration order is
    the natural binary order of the assignment integer with variable 0 as the
    least-significant bit.
    """
    if num_variables < 0:
        raise ConfigurationError(f"num_variables must be non-negative, got {num_variables}")
    total = 1 << num_variables
    block_size = 1 << min(block_bits, num_variables)
    bit_weights = 1 << np.arange(num_variables, dtype=np.int64)
    for start in range(0, total, block_size):
        stop = min(start + block_size, total)
        integers = np.arange(start, stop, dtype=np.int64)
        yield ((integers[:, None] & bit_weights[None, :]) > 0).astype(np.int8)


@dataclass(frozen=True)
class BruteForceResult:
    """Exact minimisation result.

    Attributes
    ----------
    assignment:
        A ground-state 0/1 assignment (the first found in enumeration order).
    energy:
        The minimum energy, including the model offset.
    ground_state_count:
        Number of assignments achieving the minimum (degeneracy), counted with
        the same floating-point tolerance used to detect ties.
    evaluated:
        Total number of assignments evaluated (always ``2**num_variables``).
    """

    assignment: np.ndarray
    energy: float
    ground_state_count: int
    evaluated: int


def brute_force_minimum(
    qubo: QUBOModel,
    max_variables: int = _MAX_EXHAUSTIVE_VARIABLES,
    tie_tolerance: float = 1e-9,
) -> BruteForceResult:
    """Exhaustively find the ground state of a QUBO.

    Parameters
    ----------
    qubo:
        The model to minimise.
    max_variables:
        Guard against accidental exponential blow-ups; raise explicitly to go
        beyond the default of 28 variables.
    tie_tolerance:
        Energies within this absolute tolerance of the minimum count as
        degenerate ground states.
    """
    n = qubo.num_variables
    if n > max_variables:
        raise ConfigurationError(
            f"brute force over {n} variables exceeds max_variables={max_variables}"
        )
    if n == 0:
        return BruteForceResult(
            assignment=np.zeros(0, dtype=np.int8),
            energy=qubo.offset,
            ground_state_count=1,
            evaluated=1,
        )

    best_energy = np.inf
    best_assignment: Optional[np.ndarray] = None
    ground_count = 0

    for block in enumerate_assignments(n):
        energies = qubo.energies(block)
        block_min_index = int(np.argmin(energies))
        block_min = float(energies[block_min_index])
        if block_min < best_energy - tie_tolerance:
            best_energy = block_min
            best_assignment = block[block_min_index].copy()
            ground_count = int(np.sum(np.isclose(energies, block_min, atol=tie_tolerance)))
        elif abs(block_min - best_energy) <= tie_tolerance:
            ground_count += int(np.sum(np.isclose(energies, best_energy, atol=tie_tolerance)))

    assert best_assignment is not None
    return BruteForceResult(
        assignment=best_assignment.astype(np.int8),
        energy=float(best_energy),
        ground_state_count=ground_count,
        evaluated=1 << n,
    )


def energy_landscape(qubo: QUBOModel, max_variables: int = 20) -> Tuple[np.ndarray, np.ndarray]:
    """Return (assignments, energies) for the full landscape of a small QUBO.

    Intended for analysis and tests; refuses to enumerate more than
    ``max_variables`` variables.
    """
    n = qubo.num_variables
    if n > max_variables:
        raise ConfigurationError(
            f"energy_landscape over {n} variables exceeds max_variables={max_variables}"
        )
    assignments = (
        np.concatenate(list(enumerate_assignments(n)), axis=0)
        if n
        else np.zeros((1, 0), dtype=np.int8)
    )
    energies = qubo.energies(assignments)
    return assignments, energies
