"""Classical QUBO simplification by variable prefixing (paper Figure 3).

Section 3.1 of the paper evaluates a pre-processing scheme, following Lewis &
Glover's QUBO preprocessing rules, in which a cheap classical pass fixes the
value of some binary variables before quantum processing: each fixed variable
halves the search space the annealer must explore.

For a *minimisation* QUBO with coefficients ``Q`` the one-pass rules are:

* if ``Q_ii + sum of negative couplings touching i >= 0`` then the best-case
  contribution of setting ``q_i = 1`` is non-negative, so ``q_i = 0`` is
  optimal in some ground state — fix it to 0;
* if ``Q_ii + sum of positive couplings touching i <= 0`` then the worst-case
  contribution of setting ``q_i = 1`` is non-positive, so ``q_i = 1`` is
  optimal in some ground state — fix it to 1.

(The paper's prose states the rule with the roles of 0/1 swapped; the
implementation here follows the mathematically sound direction for
minimisation, which is also what reproduces the paper's empirical finding:
the rules stop firing entirely once MIMO QUBOs exceed roughly 32–40
variables.)

The pass is applied repeatedly on the reduced problem until no further
variable can be fixed (a fixpoint), which matches the iterated usage in the
preprocessing literature the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.qubo.model import QUBOModel

__all__ = ["PreprocessingReport", "find_fixable_variables", "simplify_qubo"]


@dataclass(frozen=True)
class PreprocessingReport:
    """Outcome of :func:`simplify_qubo`.

    Attributes
    ----------
    original_num_variables:
        Variable count before simplification.
    fixed_assignments:
        Mapping from original variable index to the value (0/1) it was fixed
        to, across all fixpoint iterations.
    reduced_qubo:
        The remaining QUBO on the unfixed variables (coefficients folded into
        linear terms and offset as appropriate).
    iterations:
        Number of passes performed (the final, empty pass included).
    """

    original_num_variables: int
    fixed_assignments: Dict[int, int]
    reduced_qubo: QUBOModel
    iterations: int

    @property
    def num_fixed(self) -> int:
        """Number of variables removed by preprocessing."""
        return len(self.fixed_assignments)

    @property
    def was_simplified(self) -> bool:
        """Whether at least one variable could be fixed."""
        return self.num_fixed > 0

    @property
    def reduction_ratio(self) -> float:
        """Fraction of variables removed (0 when the model was empty)."""
        if self.original_num_variables == 0:
            return 0.0
        return self.num_fixed / self.original_num_variables

    def lift_assignment(self, reduced_assignment: np.ndarray) -> np.ndarray:
        """Combine a solution of the reduced QUBO with the fixed variables.

        Returns a full-length assignment over the original variable indices.
        """
        reduced_assignment = np.asarray(reduced_assignment, dtype=int).ravel()
        remaining = [
            index
            for index in range(self.original_num_variables)
            if index not in self.fixed_assignments
        ]
        if reduced_assignment.size != len(remaining):
            raise ValueError(
                f"reduced assignment has {reduced_assignment.size} entries, "
                f"expected {len(remaining)}"
            )
        full = np.zeros(self.original_num_variables, dtype=np.int8)
        for index, value in self.fixed_assignments.items():
            full[index] = value
        for position, index in enumerate(remaining):
            full[index] = reduced_assignment[position]
        return full


def find_fixable_variables(qubo: QUBOModel) -> Dict[int, int]:
    """One pass of the prefixing rules; returns {variable index: fixed value}.

    Only inspects the model as given (no iteration); :func:`simplify_qubo`
    applies this repeatedly on the reduced problem.
    """
    fixable: Dict[int, int] = {}
    n = qubo.num_variables
    matrix = qubo.coefficients
    for i in range(n):
        linear = matrix[i, i]
        couplings = np.concatenate([matrix[i, i + 1 :], matrix[:i, i]])
        negative_sum = float(np.sum(couplings[couplings < 0]))
        positive_sum = float(np.sum(couplings[couplings > 0]))
        if linear + negative_sum >= 0.0:
            fixable[i] = 0
        elif linear + positive_sum <= 0.0:
            fixable[i] = 1
    return fixable


def simplify_qubo(qubo: QUBOModel, max_iterations: Optional[int] = None) -> PreprocessingReport:
    """Iterate the prefixing rules to a fixpoint and return the report.

    Parameters
    ----------
    qubo:
        The model to simplify.
    max_iterations:
        Optional cap on the number of passes (defaults to the variable count,
        which is always sufficient since each productive pass removes at least
        one variable).
    """
    original_n = qubo.num_variables
    limit = max_iterations if max_iterations is not None else max(original_n, 1)

    # Track the mapping from current (reduced) indices back to original ones.
    current = qubo
    index_map = list(range(original_n))
    fixed: Dict[int, int] = {}
    iterations = 0

    while iterations < limit:
        iterations += 1
        fixable = find_fixable_variables(current)
        if not fixable:
            break
        for reduced_index, value in fixable.items():
            fixed[index_map[reduced_index]] = value
        current = current.fix_variables(fixable)
        index_map = [
            original for position, original in enumerate(index_map) if position not in fixable
        ]

    return PreprocessingReport(
        original_num_variables=original_n,
        fixed_assignments=fixed,
        reduced_qubo=current,
        iterations=iterations,
    )
