"""Serialization of QUBO models to dictionaries and JSON text.

Experiment runners persist synthesized instances alongside their results so
that benchmark runs can be replayed bit-for-bit.  The sparse dictionary form
(`linear`, `quadratic`, `offset`, `variable_names`) is stable across library
versions and human-readable for small instances.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from repro.qubo.model import QUBOModel

__all__ = ["qubo_to_dict", "qubo_from_dict", "qubo_to_json", "qubo_from_json"]


def qubo_to_dict(qubo: QUBOModel) -> Dict[str, Any]:
    """Convert a model to a JSON-friendly sparse dictionary."""
    linear = {
        str(index): float(value)
        for index, value in enumerate(qubo.linear)
        if value != 0.0
    }
    quadratic = {
        f"{i},{j}": float(value) for (i, j), value in qubo.quadratic.items()
    }
    return {
        "num_variables": qubo.num_variables,
        "linear": linear,
        "quadratic": quadratic,
        "offset": float(qubo.offset),
        "variable_names": list(qubo.variable_names),
    }


def qubo_from_dict(payload: Dict[str, Any]) -> QUBOModel:
    """Reconstruct a model from :func:`qubo_to_dict` output."""
    num_variables = int(payload["num_variables"])
    matrix = np.zeros((num_variables, num_variables))
    for index_text, value in payload.get("linear", {}).items():
        index = int(index_text)
        matrix[index, index] = float(value)
    for key, value in payload.get("quadratic", {}).items():
        i_text, j_text = key.split(",")
        i, j = int(i_text), int(j_text)
        matrix[i, j] = float(value)
    names = payload.get("variable_names")
    return QUBOModel(
        coefficients=matrix,
        offset=float(payload.get("offset", 0.0)),
        variable_names=tuple(names) if names else (),
    )


def qubo_to_json(qubo: QUBOModel, indent: int = None) -> str:
    """Serialise a model to JSON text."""
    return json.dumps(qubo_to_dict(qubo), indent=indent, sort_keys=True)


def qubo_from_json(text: str) -> QUBOModel:
    """Reconstruct a model from :func:`qubo_to_json` output."""
    return qubo_from_dict(json.loads(text))
