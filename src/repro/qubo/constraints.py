"""Soft-information constraint augmentation (paper Figure 4).

Section 3.1 of the paper explores using *soft information* — wireless-layer
pre-knowledge that certain transmitted bits are very likely to take a
particular value — to narrow the annealer's search space.  The scheme adds
penalty terms to the QUBO that raise the energy of assignments disagreeing
with the pre-knowledge, ideally without disturbing the global optimum.

The paper's example for a 16-QAM symbol believed to be ``1111`` adds the pair
terms ``C1 * (q1 - 1) * (q2 - 1)`` and ``C2 * (q3 - 1) * (q4 - 1)``: each term
is zero as soon as either bit of the pair agrees with the belief and positive
(= C) only when both bits contradict it.  This module generalises that
construction to arbitrary target bit values, single-bit biases, and batches of
constraints, and keeps everything strictly quadratic so the augmented model
remains a QUBO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.qubo.model import QUBOModel

__all__ = [
    "SoftConstraint",
    "pairwise_agreement_constraint",
    "single_bit_bias_constraint",
    "add_soft_constraints",
]


@dataclass(frozen=True)
class SoftConstraint:
    """A quadratic penalty encouraging some variables to match target values.

    Attributes
    ----------
    variables:
        Indices of the constrained variables (one or two of them; larger
        groups must be decomposed into pairs to stay quadratic).
    targets:
        Believed values (0/1), one per constrained variable.
    strength:
        Penalty magnitude C (> 0).  Larger values narrow the search harder but
        risk distorting the landscape on an analog device — exactly the
        difficulty the paper reports.
    """

    variables: Tuple[int, ...]
    targets: Tuple[int, ...]
    strength: float

    def __post_init__(self) -> None:
        if len(self.variables) not in (1, 2):
            raise ConfigurationError(
                "soft constraints support 1 or 2 variables per term; decompose "
                f"larger groups into pairs (got {len(self.variables)})"
            )
        if len(self.variables) != len(self.targets):
            raise ConfigurationError("variables and targets must have equal length")
        if len(set(self.variables)) != len(self.variables):
            raise ConfigurationError("constraint variables must be distinct")
        if any(target not in (0, 1) for target in self.targets):
            raise ConfigurationError("targets must be 0 or 1")
        if not self.strength > 0:
            raise ConfigurationError(f"strength must be positive, got {self.strength}")

    def penalty_qubo(self, num_variables: int) -> QUBOModel:
        """Materialise this constraint as a QUBO penalty on ``num_variables``.

        The penalty is ``C * prod_i (q_i - (1 - t_i))`` up to sign, arranged so
        that it equals ``C`` only when *every* constrained bit contradicts its
        target, and 0 otherwise — the conservative construction of Figure 4.
        """
        for index in self.variables:
            if not 0 <= index < num_variables:
                raise ConfigurationError(
                    f"constraint variable {index} out of range for {num_variables}-variable model"
                )
        matrix = np.zeros((num_variables, num_variables))
        offset = 0.0

        if len(self.variables) == 1:
            (index,), (target,) = self.variables, self.targets
            # Penalise q != target: C * (q - target)^2 == C*q - 2C*t*q + C*t^2
            # which for binary q simplifies to a linear term plus constant.
            matrix[index, index] += self.strength * (1.0 - 2.0 * target)
            offset += self.strength * (target ** 2)
            return QUBOModel(coefficients=matrix, offset=offset)

        (i, j) = self.variables
        (ti, tj) = self.targets
        # Term C * (q_i - (1 - ti)) * (q_j - (1 - tj)) * sign, with the sign
        # chosen so the product is +C exactly when both bits are wrong.
        # Let a = 1 - ti, b = 1 - tj (the "wrong" values). The product
        # (q_i - a)(q_j - b) evaluates to:
        #   (ti - a)(tj - b) = (2ti-1)(2tj-1) when both bits are right,
        #   0 when exactly one is right... only if the right bit hits its
        #   subtracted constant. We instead expand explicitly below.
        sign_i = 1.0 - 2.0 * ti  # +1 if target 0, -1 if target 1
        sign_j = 1.0 - 2.0 * tj
        # f(q_i, q_j) = C * (sign_i * q_i + ti) * (sign_j * q_j + tj)
        #   equals C when q_i != ti and q_j != tj, and 0 whenever either
        #   variable matches its target (check: sign*q + t is 1 for the wrong
        #   value and 0 for the right one).
        low, high = (i, j) if i < j else (j, i)
        sign_low, sign_high = (sign_i, sign_j) if i < j else (sign_j, sign_i)
        t_low, t_high = (ti, tj) if i < j else (tj, ti)
        matrix[low, high] += self.strength * sign_low * sign_high
        matrix[low, low] += self.strength * sign_low * t_high
        matrix[high, high] += self.strength * sign_high * t_low
        offset += self.strength * t_low * t_high
        return QUBOModel(coefficients=matrix, offset=offset)


def pairwise_agreement_constraint(
    variable_pair: Sequence[int], target_bits: Sequence[int], strength: float
) -> SoftConstraint:
    """Build the Figure-4 style pair constraint for two bits of one symbol."""
    return SoftConstraint(
        variables=tuple(int(v) for v in variable_pair),
        targets=tuple(int(t) for t in target_bits),
        strength=float(strength),
    )


def single_bit_bias_constraint(variable: int, target_bit: int, strength: float) -> SoftConstraint:
    """Build a single-variable bias toward a believed bit value."""
    return SoftConstraint(
        variables=(int(variable),), targets=(int(target_bit),), strength=float(strength)
    )


def add_soft_constraints(qubo: QUBOModel, constraints: Iterable[SoftConstraint]) -> QUBOModel:
    """Return a new QUBO with all penalty terms added to the original model."""
    augmented = qubo
    for constraint in constraints:
        augmented = augmented.add(constraint.penalty_qubo(qubo.num_variables))
    return augmented
