"""QUBO / Ising substrate.

Quadratic Unconstrained Binary Optimization (QUBO) is the problem form both
quantum annealers and most Ising machines accept (paper Eq. 1).  This package
provides:

* :mod:`repro.qubo.model` — the :class:`QUBOModel` container (upper-triangular
  coefficients, energy evaluation, algebra).
* :mod:`repro.qubo.ising` — the equivalent :class:`IsingModel` (+/-1 spins)
  and exact conversions in both directions.
* :mod:`repro.qubo.preprocessing` — the variable-prefixing simplification the
  paper evaluates in Figure 3.
* :mod:`repro.qubo.constraints` — the soft-information constraint augmentation
  of Figure 4.
* :mod:`repro.qubo.generators` — random QUBO instance generators for tests and
  benchmarks that do not need the MIMO structure.
* :mod:`repro.qubo.serialization` — stable text round-tripping of models.
"""

from repro.qubo.model import QUBOModel
from repro.qubo.ising import IsingModel, qubo_to_ising, ising_to_qubo
from repro.qubo.energy import (
    qubo_energy,
    ising_energy,
    energy_landscape,
    brute_force_minimum,
)
from repro.qubo.preprocessing import (
    PreprocessingReport,
    simplify_qubo,
    find_fixable_variables,
)
from repro.qubo.constraints import (
    SoftConstraint,
    add_soft_constraints,
    pairwise_agreement_constraint,
)
from repro.qubo.generators import (
    random_qubo,
    random_ising,
    planted_solution_qubo,
)
from repro.qubo.serialization import qubo_to_dict, qubo_from_dict, qubo_to_json, qubo_from_json

__all__ = [
    "QUBOModel",
    "IsingModel",
    "qubo_to_ising",
    "ising_to_qubo",
    "qubo_energy",
    "ising_energy",
    "energy_landscape",
    "brute_force_minimum",
    "PreprocessingReport",
    "simplify_qubo",
    "find_fixable_variables",
    "SoftConstraint",
    "add_soft_constraints",
    "pairwise_agreement_constraint",
    "random_qubo",
    "random_ising",
    "planted_solution_qubo",
    "qubo_to_dict",
    "qubo_from_dict",
    "qubo_to_json",
    "qubo_from_json",
]
