"""Ising model and exact QUBO <-> Ising conversions.

Quantum annealers physically implement the Ising Hamiltonian

    E(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j,    s_i in {-1, +1},

which is equivalent to the QUBO form of paper Eq. 1 under the substitution
``q_i = (1 + s_i) / 2``.  The conversions implemented here are exact
(including the constant offset), so energies agree to floating-point
precision on every assignment — a property the test suite checks with
hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.exceptions import DimensionError
from repro.qubo.model import QUBOModel

__all__ = ["IsingModel", "qubo_to_ising", "ising_to_qubo", "spins_to_bits", "bits_to_spins"]


def spins_to_bits(spins: Sequence[int]) -> np.ndarray:
    """Map +/-1 spins to 0/1 bits using ``q = (1 + s) / 2``."""
    spins = np.asarray(spins, dtype=int).ravel()
    if spins.size and not np.all(np.isin(spins, (-1, 1))):
        raise ValueError("spins must be -1 or +1")
    return ((spins + 1) // 2).astype(np.int8)


def bits_to_spins(bits: Sequence[int]) -> np.ndarray:
    """Map 0/1 bits to +/-1 spins using ``s = 2q - 1``."""
    bits = np.asarray(bits, dtype=int).ravel()
    if bits.size and not np.all(np.isin(bits, (0, 1))):
        raise ValueError("bits must be 0 or 1")
    return (2 * bits - 1).astype(np.int8)


@dataclass(frozen=True)
class IsingModel:
    """An immutable Ising instance with local fields h and couplings J.

    The coupling matrix is stored strictly upper-triangular; any square input
    is folded upward (and its diagonal is rejected, since ``s_i^2 = 1`` terms
    belong in the offset).
    """

    fields: np.ndarray
    couplings: np.ndarray
    offset: float = 0.0

    def __post_init__(self) -> None:
        fields = np.asarray(self.fields, dtype=float).ravel()
        couplings = np.asarray(self.couplings, dtype=float)
        if couplings.ndim != 2 or couplings.shape[0] != couplings.shape[1]:
            raise DimensionError(
                f"couplings must form a square matrix, got shape {couplings.shape}"
            )
        if couplings.shape[0] != fields.size:
            raise DimensionError(
                f"{fields.size} fields supplied for {couplings.shape[0]} spins"
            )
        diagonal = np.diagonal(couplings)
        extra_offset = float(np.sum(diagonal))
        upper = np.triu(couplings, k=1) + np.tril(couplings, k=-1).T
        object.__setattr__(self, "fields", fields)
        object.__setattr__(self, "couplings", upper)
        object.__setattr__(self, "offset", float(self.offset) + extra_offset)

    @property
    def num_spins(self) -> int:
        """Number of spin variables."""
        return int(self.fields.size)

    def energy(self, spins: Sequence[int]) -> float:
        """Energy of a +/-1 spin assignment, including the offset."""
        vector = np.asarray(spins, dtype=float).ravel()
        if vector.size != self.num_spins:
            raise DimensionError(
                f"assignment has {vector.size} spins, expected {self.num_spins}"
            )
        return float(self.fields @ vector + vector @ self.couplings @ vector + self.offset)

    def energies(self, assignments: np.ndarray) -> np.ndarray:
        """Vectorised energies for a batch of spin assignments (rows)."""
        batch = np.atleast_2d(np.asarray(assignments, dtype=float))
        if batch.shape[1] != self.num_spins:
            raise DimensionError(
                f"assignments have {batch.shape[1]} columns, expected {self.num_spins}"
            )
        quadratic = np.einsum("bi,ij,bj->b", batch, self.couplings, batch)
        return batch @ self.fields + quadratic + self.offset

    def coupling(self, i: int, j: int) -> float:
        """Coupling J_ij (order-insensitive, 0 if absent)."""
        if i == j:
            raise ValueError("Ising couplings are defined for distinct spins only")
        low, high = (i, j) if i < j else (j, i)
        return float(self.couplings[low, high])

    def neighbourhood(self, index: int) -> Dict[int, float]:
        """Nonzero couplings touching spin ``index``."""
        result: Dict[int, float] = {}
        for j in range(self.num_spins):
            if j == index:
                continue
            value = self.coupling(index, j)
            if value != 0.0:
                result[j] = value
        return result

    def max_abs_coefficient(self) -> float:
        """Largest absolute field or coupling (used for hardware rescaling)."""
        candidates = [np.max(np.abs(self.fields)) if self.fields.size else 0.0]
        if self.num_spins:
            candidates.append(float(np.max(np.abs(self.couplings))))
        return float(max(candidates))


def qubo_to_ising(qubo: QUBOModel) -> IsingModel:
    """Convert a QUBO to the exactly equivalent Ising model.

    With ``q = (1 + s) / 2`` the QUBO energy becomes an Ising energy with

    * J_ij = Q_ij / 4 for i < j,
    * h_i  = Q_ii / 2 + (sum_j Q_ij + Q_ji) / 4 over off-diagonal couplings,
    * offset = sum_i Q_ii / 2 + sum_{i<j} Q_ij / 4 + original offset.
    """
    n = qubo.num_variables
    matrix = qubo.coefficients
    fields = np.zeros(n)
    couplings = np.zeros((n, n))
    offset = qubo.offset

    for i in range(n):
        linear = matrix[i, i]
        fields[i] += linear / 2.0
        offset += linear / 2.0
        for j in range(i + 1, n):
            quad = matrix[i, j]
            if quad == 0.0:
                continue
            couplings[i, j] += quad / 4.0
            fields[i] += quad / 4.0
            fields[j] += quad / 4.0
            offset += quad / 4.0

    return IsingModel(fields=fields, couplings=couplings, offset=offset)


def ising_to_qubo(ising: IsingModel) -> QUBOModel:
    """Convert an Ising model to the exactly equivalent QUBO.

    Uses ``s = 2q - 1``; the resulting coefficients are

    * Q_ij = 4 J_ij for i < j,
    * Q_ii = 2 h_i - 2 * sum_j (J_ij + J_ji),
    * offset = sum_{i<j} J_ij - sum_i h_i + original offset.
    """
    n = ising.num_spins
    matrix = np.zeros((n, n))
    offset = ising.offset

    for i in range(n):
        matrix[i, i] += 2.0 * ising.fields[i]
        offset -= ising.fields[i]
        for j in range(i + 1, n):
            coupling = ising.couplings[i, j]
            if coupling == 0.0:
                continue
            matrix[i, j] += 4.0 * coupling
            matrix[i, i] -= 2.0 * coupling
            matrix[j, j] -= 2.0 * coupling
            offset += coupling

    return QUBOModel(coefficients=matrix, offset=offset)
