"""The deterministic multiprocessing shard runner.

:class:`ParallelRunner` executes a list of :class:`ShardTask` work units —
serially for ``workers in (None, 0, 1)``, across a
``concurrent.futures.ProcessPoolExecutor`` otherwise — and returns results
in *task order* regardless of completion order.  Because every shard's
randomness is seeded explicitly through its own arguments (the library-wide
child-seed discipline), the assembled sweep is bitwise-identical to the
serial path at any worker count; parallelism only changes wall-clock time.

When a :class:`~repro.parallel.cache.ResultCache` is attached, each task is
fingerprinted first and only cache misses are executed; fresh results are
stored back, so a re-run with one changed shard recomputes exactly that
shard.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.parallel.cache import ResultCache, task_fingerprint
from repro.telemetry.log import get_logger

__all__ = ["ShardTask", "RunStats", "ParallelRunner"]

_log = get_logger(__name__)


def _pool_worker_init() -> None:
    """Process-pool worker initializer: prefer the numba kernel when present.

    Pool workers are fresh processes doing pure batch compute, so when the
    user has not pinned ``REPRO_KERNEL`` themselves and numba is importable,
    workers default to the JIT kernel (it is bitwise-equivalent to the
    vectorized kernel — see ``tests/test_kernels.py``).  An explicit
    ``REPRO_KERNEL`` always wins, and without numba the usual warn-once
    vectorized fallback still applies because nothing is overridden here.
    """
    from repro.annealing.kernels import KERNEL_ENV_VAR, numba_available

    if os.environ.get(KERNEL_ENV_VAR, "").strip():
        return
    if numba_available():
        os.environ[KERNEL_ENV_VAR] = "numba"


@dataclass(frozen=True)
class ShardTask:
    """One independent work unit of a sharded sweep.

    Attributes
    ----------
    key:
        Stable shard identity — e.g. ``("scenario-study", "flash-crowd",
        "autoscaled")`` — used in the cache fingerprint and error messages.
    fn:
        A *module-level* function (it must be picklable by reference for the
        process pool).  All shard randomness must enter through ``kwargs``
        as seeds, never as live generator objects.
    kwargs:
        Keyword arguments of the shard; these are canonicalised into the
        cache fingerprint, so they must contain only seeds, configuration
        dataclasses and plain data.
    fingerprint_exclude:
        Names of kwargs left out of the cache fingerprint — reserved for
        execution details *proven* not to affect results (e.g. solver
        submission chunking).  See :func:`task_fingerprint`.
    """

    key: Tuple[Union[str, int, float], ...]
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    fingerprint_exclude: Tuple[str, ...] = ()

    def fingerprint(self) -> str:
        """The shard's content address (see :func:`task_fingerprint`)."""
        return task_fingerprint(self.fn, self.kwargs, self.key, self.fingerprint_exclude)

    def execute(self) -> Any:
        """Run the shard in the current process."""
        return self.fn(**dict(self.kwargs))


@dataclass
class RunStats:
    """Execution statistics of one :meth:`ParallelRunner.run_sharded` call."""

    tasks: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1


class ParallelRunner:
    """Executes shard tasks serially or across a process pool, with caching.

    Parameters
    ----------
    workers:
        Default worker count for :meth:`run_sharded`.  ``None``, ``0`` and
        ``1`` all mean "serial, in this process" (no pool is created);
        negative counts are rejected.
    cache:
        Optional :class:`~repro.parallel.cache.ResultCache`.  When present,
        tasks are fingerprinted and only misses execute.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.workers = self._validate_workers(workers)
        self.cache = cache
        self.last_run = RunStats()

    @staticmethod
    def _validate_workers(workers: Optional[int]) -> Optional[int]:
        if workers is None:
            return None
        workers = int(workers)
        if workers < 0:
            raise ConfigurationError(f"workers must be non-negative, got {workers}")
        return workers

    def run_sharded(
        self,
        tasks: Sequence[ShardTask],
        workers: Optional[int] = None,
    ) -> List[Any]:
        """Execute ``tasks`` and return their results in task order.

        The result list satisfies ``results[i] == tasks[i].fn(**tasks[i].kwargs)``
        bit for bit, whether shards ran serially, in a pool of any size, or
        came out of the cache.
        """
        workers = self.workers if workers is None else self._validate_workers(workers)
        effective = 1 if workers in (None, 0) else workers
        stats = RunStats(tasks=len(tasks), workers=effective)
        self.last_run = stats
        if not tasks:
            return []
        tel = telemetry.active()

        results: List[Any] = [None] * len(tasks)
        pending: List[int] = []
        fingerprints: Dict[int, str] = {}
        if self.cache is not None:
            for index, task in enumerate(tasks):
                fingerprints[index] = task.fingerprint()
                hit, value = self.cache.get(fingerprints[index], key=task.key)
                if hit:
                    results[index] = value
                    stats.cache_hits += 1
                    _log.debug("parallel.cache_hit", key=task.key)
                else:
                    pending.append(index)
                    stats.cache_misses += 1
        else:
            pending = list(range(len(tasks)))
        if tel is not None:
            tel.registry.counter("repro_parallel_tasks_total").inc(len(tasks))
            tel.registry.counter("repro_parallel_cache_hits_total").inc(stats.cache_hits)
            tel.registry.counter("repro_parallel_cache_misses_total").inc(stats.cache_misses)

        stats.executed = len(pending)
        if pending:
            # Results are stored the moment each shard completes, so an
            # interrupted or partially failed sweep keeps every shard it
            # already paid for.
            def store(index: int, value: Any) -> None:
                if self.cache is not None:
                    self.cache.put(fingerprints[index], value)

            if effective > 1 and len(pending) > 1:
                self._run_pool(tasks, pending, results, min(effective, len(pending)), store)
            else:
                for index in pending:
                    task = tasks[index]
                    if tel is not None:
                        with tel.tracer.span("parallel.shard", key=str(task.key)):
                            results[index] = self._run_one(task)
                    else:
                        results[index] = self._run_one(task)
                    store(index, results[index])
                    _log.debug("parallel.shard_done", key=task.key)
        _log.info(
            "parallel.run_sharded",
            tasks=stats.tasks,
            executed=stats.executed,
            cache_hits=stats.cache_hits,
            cache_misses=stats.cache_misses,
            workers=effective,
        )
        return results

    @staticmethod
    def _run_one(task: ShardTask) -> Any:
        try:
            return task.execute()
        except Exception as error:
            # Re-raise unchanged (callers rely on the exception type, e.g.
            # ConfigurationError for invalid sweep configs), annotated with
            # which shard failed.
            error.add_note(f"while executing shard {task.key!r}")
            raise

    @staticmethod
    def _run_pool(
        tasks: Sequence[ShardTask],
        pending: Sequence[int],
        results: List[Any],
        workers: int,
        store: Callable[[int, Any], None],
    ) -> None:
        # Telemetry enabled in *this* process does not propagate into pool
        # workers (each child has its own disabled-by-default singleton), so
        # shard-internal spans are lost under multiprocessing; the parent
        # still records a completion event per shard.  Use serial mode when
        # a full trace matters — results are bitwise-identical either way.
        tel = telemetry.active()
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_worker_init
        ) as executor:
            futures = {
                executor.submit(tasks[index].fn, **dict(tasks[index].kwargs)): index
                for index in pending
            }
            failure: Optional[BaseException] = None
            for future in as_completed(futures):
                index = futures[future]
                if future.cancelled():
                    continue
                error = future.exception()
                if error is not None:
                    if failure is None:
                        # First failure wins: cancel what has not started,
                        # but keep draining so every in-flight shard that
                        # completes is still stored — a retry after fixing
                        # the bad shard reuses everything already paid for.
                        failure = error
                        failure.add_note(f"while executing shard {tasks[index].key!r}")
                        for other in futures:
                            other.cancel()
                    continue
                results[index] = future.result()
                store(index, results[index])
                if tel is not None:
                    tel.tracer.event("parallel.shard_done", key=str(tasks[index].key))
                _log.debug("parallel.shard_done", key=tasks[index].key)
            if failure is not None:
                raise failure
