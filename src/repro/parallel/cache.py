"""Content-addressed on-disk caching of shard results.

A sweep point's result is a pure function of (the code that computes it, the
shard's configuration, its derived seeds).  :func:`task_fingerprint` turns
that triple into a stable SHA-256 key — the function's qualified name, a
digest of the whole ``repro`` package source and of the function's defining
module cover the code, and :func:`canonical_token` reduces the arguments
(dataclass configs, tuples, numpy scalars and arrays) to a canonical JSON
form — and :class:`ResultCache` stores pickled results under that key.
Re-running a sweep with one changed point therefore recomputes only that
point; editing *any* library code invalidates every cached entry.

Cache entries are written atomically (temp file + rename) so an interrupted
run never leaves a truncated entry behind, and unreadable entries are
treated as misses and evicted rather than crashing the sweep.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import inspect
import json
import os
import pathlib
import pickle
import sys
import tempfile
import warnings
from typing import Any, Callable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.telemetry.log import get_logger

__all__ = ["ResultCache", "canonical_token", "task_fingerprint"]

_log = get_logger(__name__)

#: Bump to invalidate every existing cache entry (serialisation layout changes).
CACHE_FORMAT_VERSION = 1


def canonical_token(value: Any) -> Any:
    """Reduce ``value`` to a deterministic JSON-serialisable token.

    Supported forms: ``None``, booleans, integers, strings, floats
    (canonicalised through ``repr`` so ``0.1`` hashes identically across
    runs), numpy scalars, lists/tuples, mappings (sorted by key),
    dataclasses (class name plus per-field tokens in declaration order) and
    numpy arrays (dtype, shape and a digest of the raw bytes).  Anything
    else — live generators, open handles, arbitrary objects — is rejected:
    shard arguments must carry *seeds*, not stateful randomness, or the
    fingerprint could not witness what the shard will actually compute.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    # np.float64 subclasses float: coerce before repr so both hash alike.
    if isinstance(value, (float, np.floating)):
        return ["float", repr(float(value))]
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
        return ["ndarray", str(value.dtype), list(value.shape), digest]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = [
            [field.name, canonical_token(getattr(value, field.name))]
            for field in dataclasses.fields(value)
        ]
        return ["dataclass", type(value).__qualname__, fields]
    if isinstance(value, Mapping):
        # Keys canonicalise like any other value (str(1) == str("1") would
        # collide); entries sort by the JSON form of the key token so the
        # result is order-independent even for mixed key types.
        entries = [
            [canonical_token(key), canonical_token(item)] for key, item in value.items()
        ]
        entries.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return ["mapping", entries]
    if isinstance(value, (list, tuple)):
        return ["sequence", [canonical_token(item) for item in value]]
    raise ConfigurationError(
        f"cannot canonicalise a {type(value).__name__} into a cache key; shard "
        "arguments must be seeds/configs, not stateful objects"
    )


@functools.lru_cache(maxsize=1)
def _library_digest() -> str:
    """Digest of the entire ``repro`` package source, computed once per process.

    A shard's result depends on code throughout the stack — the simulators,
    kernels and report builders, not just the experiment module holding the
    shard function — so the fingerprint hashes every ``*.py`` file of the
    installed package.  Any library edit therefore invalidates every cached
    entry; this is deliberately conservative (a comment edit recomputes too)
    because silently replaying stale results would be far worse.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@functools.lru_cache(maxsize=None)
def _source_digest(function: Callable) -> str:
    """Digest of the shard function's *defining module* source.

    Covers shard functions defined outside the ``repro`` package (test
    helpers, user scripts), which :func:`_library_digest` cannot see.
    Memoized per function object: large sweeps fingerprint thousands of
    tasks over a handful of shard functions.
    """
    module = sys.modules.get(function.__module__)
    source: Optional[str] = None
    if module is not None:
        try:
            source = inspect.getsource(module)
        except (OSError, TypeError):
            source = None
    if source is None:
        try:
            source = inspect.getsource(function)
        except (OSError, TypeError):  # builtins, C extensions, exec'd code
            code = getattr(function, "__code__", None)
            source = repr(code.co_code) if code is not None else repr(function)
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _kernel_identity() -> str:
    """The dynamics identity of the active sweep kernels.

    The replica-parallel implementations (vectorized / reference / numba)
    are proven bitwise-equal by ``tests/test_kernels.py``, so they share one
    identity; only the preserved legacy dynamics produce different results.
    """
    from repro.annealing import kernels

    return "legacy" if kernels.active_kernel_name() == "legacy" else "replica"


def task_fingerprint(
    function: Callable,
    kwargs: Mapping[str, Any],
    key: Sequence[Union[str, int, float]] = (),
    exclude: Sequence[str] = (),
) -> str:
    """The content address of one shard: code identity + canonical arguments.

    ``exclude`` names kwargs left out of the fingerprint — reserved for
    execution details *proven* not to affect results (e.g. the solver
    submission chunking ``batch_size``, whose invariance the batch-engine
    tests enforce bitwise).  Excluding an argument that does affect results
    would serve stale data; use sparingly.
    """
    excluded = frozenset(exclude)
    payload = {
        "version": CACHE_FORMAT_VERSION,
        # Results can legitimately change across interpreter/numpy upgrades
        # (float reductions, percentile internals), so the environment is
        # part of a result's identity.
        "environment": {
            "python": ".".join(str(part) for part in sys.version_info[:3]),
            "numpy": np.__version__,
            "kernel": _kernel_identity(),
        },
        "function": f"{function.__module__}.{function.__qualname__}",
        "library": _library_digest(),
        "source": _source_digest(function),
        "key": canonical_token(tuple(key)),
        "kwargs": canonical_token(
            {name: value for name, value in kwargs.items() if name not in excluded}
        ),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """A content-addressed pickle store for shard results.

    Parameters
    ----------
    root:
        Directory holding the cache (created on first write).  Entries are
        sharded into 256 two-hex-character subdirectories to keep directory
        listings short on large sweeps.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._write_disabled = False

    def _path(self, fingerprint: str) -> pathlib.Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.pkl"

    def get(self, fingerprint: str, key: Optional[Any] = None) -> Tuple[bool, Optional[Any]]:
        """Look up a fingerprint; returns ``(hit, value)`` and counts the outcome.

        ``key`` is the human-readable shard identity (``ShardTask.key``),
        used only to make the corrupt-entry warning actionable.
        """
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception as error:
            # A corrupt pickle can raise nearly anything (ValueError,
            # KeyError, UnicodeDecodeError, ... from bad opcode streams): a
            # damaged or stale entry is a miss, not a crash; evict it so the
            # recomputed result can take its place.  An eviction is never
            # silent: it is counted here, surfaced through the telemetry
            # registry, and logged with the shard key — repeated evictions
            # mean a sick disk or a writer racing this cache.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            self.evictions += 1
            _log.warning(
                "cache.evicted_corrupt_entry",
                key="<unknown>" if key is None else key,
                fingerprint=fingerprint[:12],
                error=type(error).__name__,
            )
            tel = telemetry.active()
            if tel is not None:
                tel.registry.counter("repro_cache_evictions_total").inc()
            return False, None
        self.hits += 1
        return True, value

    def put(self, fingerprint: str, value: Any) -> None:
        """Store ``value`` under ``fingerprint`` atomically.

        A cache that cannot be written (read-only checkout, full disk) must
        not abort a sweep whose compute is already paid for: the first
        ``OSError`` downgrades the run to uncached execution with a single
        warning, and later stores are skipped silently.
        """
        if self._write_disabled:
            return
        path = self._path(fingerprint)
        temp_name: Optional[str] = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
            )
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except OSError as error:
            self._write_disabled = True
            warnings.warn(
                f"result cache at {self.root} is not writable ({error}); "
                "continuing without storing results",
                RuntimeWarning,
                stacklevel=2,
            )
            self._cleanup_temp(temp_name)
        except BaseException:
            self._cleanup_temp(temp_name)
            raise

    @staticmethod
    def _cleanup_temp(temp_name: Optional[str]) -> None:
        if temp_name is not None:
            try:
                os.unlink(temp_name)
            except OSError:
                pass

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters (entries on disk are untouched)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
