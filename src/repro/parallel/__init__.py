"""Deterministic parallel execution of sharded experiment sweeps.

Every experiment driver in this library decomposes into *shards* —
independent work units (an instance, an SNR point, a scenario arm) whose
randomness flows exclusively through explicitly derived child seeds.  This
package runs those shards across a process pool without changing a single
bit of the results:

* :class:`~repro.parallel.runner.ShardTask` — one picklable work unit: a
  top-level function, its keyword arguments, and a stable shard key.
* :class:`~repro.parallel.runner.ParallelRunner` — executes a task list
  serially or across a ``ProcessPoolExecutor``; results come back in task
  order, so the assembled sweep is bitwise-identical to the serial path at
  any worker count.
* :class:`~repro.parallel.cache.ResultCache` — a content-addressed on-disk
  result store keyed by :func:`~repro.parallel.cache.task_fingerprint`
  (function identity + source digest + canonicalised arguments), so
  re-running a sweep with one changed point recomputes only that point.

The design contract and determinism guarantee are documented in
``docs/parallel.md``.
"""

from repro.parallel.cache import ResultCache, canonical_token, task_fingerprint
from repro.parallel.runner import ParallelRunner, RunStats, ShardTask

__all__ = [
    "ParallelRunner",
    "RunStats",
    "ShardTask",
    "ResultCache",
    "canonical_token",
    "task_fingerprint",
]
