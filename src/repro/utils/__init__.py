"""Shared low-level utilities used across the repro library.

The submodules are intentionally small and dependency-free (beyond numpy):

* :mod:`repro.utils.rng` — reproducible random-number-generator plumbing.
* :mod:`repro.utils.linalg` — complex/real decompositions used by the MIMO
  detection transform and linear detectors.
* :mod:`repro.utils.validation` — argument checking helpers shared by the
  public API surface.
* :mod:`repro.utils.serialization` — JSON-friendly encoding of numpy-backed
  dataclasses.
"""

from repro.utils.rng import (
    BatchRandomState,
    RandomState,
    ensure_rng,
    ensure_rng_batch,
    spawn_rngs,
)
from repro.utils.batching import iter_batches
from repro.utils.linalg import (
    complex_to_real_stacked,
    real_to_complex_stacked,
    hermitian,
    is_hermitian,
    vector_norm_squared,
)
from repro.utils.validation import (
    require,
    require_positive,
    require_in_range,
    require_power_of_two,
    require_probability,
)
from repro.utils.serialization import to_jsonable, from_jsonable

__all__ = [
    "BatchRandomState",
    "RandomState",
    "ensure_rng",
    "ensure_rng_batch",
    "iter_batches",
    "spawn_rngs",
    "complex_to_real_stacked",
    "real_to_complex_stacked",
    "hermitian",
    "is_hermitian",
    "vector_norm_squared",
    "require",
    "require_positive",
    "require_in_range",
    "require_power_of_two",
    "require_probability",
    "to_jsonable",
    "from_jsonable",
]
