"""Linear-algebra helpers for complex baseband signal processing.

MIMO detection operates on complex channel matrices and symbol vectors, while
the QUBO reduction and several classical detectors operate on an equivalent
real-valued "stacked" representation.  These helpers centralise that
conversion so the convention (real parts on top, imaginary parts below) is
applied consistently everywhere.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "complex_to_real_stacked",
    "real_to_complex_stacked",
    "complex_vector_to_real",
    "real_vector_to_complex",
    "hermitian",
    "is_hermitian",
    "vector_norm_squared",
    "gram_matrix",
]


def complex_to_real_stacked(matrix: np.ndarray) -> np.ndarray:
    """Expand a complex matrix H into the real 2Nr x 2Nt block matrix.

    The expansion follows the standard MIMO real decomposition::

        [[ Re(H), -Im(H)],
         [ Im(H),  Re(H)]]

    so that ``H @ x`` in the complex domain equals the stacked real product.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={matrix.ndim}")
    real = matrix.real
    imag = matrix.imag
    top = np.hstack([real, -imag])
    bottom = np.hstack([imag, real])
    return np.vstack([top, bottom])


def real_to_complex_stacked(matrix: np.ndarray) -> np.ndarray:
    """Invert :func:`complex_to_real_stacked` (best-effort reconstruction)."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] % 2 or matrix.shape[1] % 2:
        raise ValueError("expected a 2-D matrix with even dimensions")
    rows = matrix.shape[0] // 2
    cols = matrix.shape[1] // 2
    real = matrix[:rows, :cols]
    imag = matrix[rows:, :cols]
    return real + 1j * imag


def complex_vector_to_real(vector: np.ndarray) -> np.ndarray:
    """Stack a complex vector into ``[Re(x); Im(x)]``."""
    vector = np.asarray(vector, dtype=complex).ravel()
    return np.concatenate([vector.real, vector.imag])


def real_vector_to_complex(vector: np.ndarray) -> np.ndarray:
    """Invert :func:`complex_vector_to_real`."""
    vector = np.asarray(vector, dtype=float).ravel()
    if vector.size % 2:
        raise ValueError("stacked real vector must have even length")
    half = vector.size // 2
    return vector[:half] + 1j * vector[half:]


def hermitian(matrix: np.ndarray) -> np.ndarray:
    """Return the conjugate transpose of a matrix."""
    return np.conjugate(np.asarray(matrix)).T


def is_hermitian(matrix: np.ndarray, tolerance: float = 1e-10) -> bool:
    """Check whether a square matrix equals its conjugate transpose."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, hermitian(matrix), atol=tolerance))


def vector_norm_squared(vector: np.ndarray) -> float:
    """Squared Euclidean norm of a (possibly complex) vector."""
    vector = np.asarray(vector).ravel()
    return float(np.real(np.vdot(vector, vector)))


def gram_matrix(matrix: np.ndarray) -> np.ndarray:
    """Return the Gram matrix ``H^H H`` used by linear MIMO detectors."""
    matrix = np.asarray(matrix)
    return hermitian(matrix) @ matrix
