"""JSON-friendly serialization of numpy-backed results.

Experiment runners persist their configuration and results as plain JSON so
that benchmark output can be archived and compared across runs.  These helpers
recursively convert numpy scalars/arrays and dataclasses into built-in Python
types (and back, for the array case, via explicit markers).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

import numpy as np

__all__ = ["to_jsonable", "from_jsonable"]

_ARRAY_MARKER = "__ndarray__"
_COMPLEX_MARKER = "__complex__"


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serialisable builtins."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, complex) or isinstance(value, np.complexfloating):
        return {_COMPLEX_MARKER: [float(np.real(value)), float(np.imag(value))]}
    if isinstance(value, np.ndarray):
        if np.iscomplexobj(value):
            return {
                _ARRAY_MARKER: {
                    "real": value.real.tolist(),
                    "imag": value.imag.tolist(),
                    "dtype": "complex",
                }
            }
        return {_ARRAY_MARKER: {"data": value.tolist(), "dtype": str(value.dtype)}}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    raise TypeError(f"cannot serialise value of type {type(value).__name__}")


def from_jsonable(value: Any) -> Any:
    """Invert :func:`to_jsonable` for arrays/complex markers (dicts stay dicts)."""
    if isinstance(value, dict):
        if _COMPLEX_MARKER in value and len(value) == 1:
            real, imag = value[_COMPLEX_MARKER]
            return complex(real, imag)
        if _ARRAY_MARKER in value and len(value) == 1:
            payload: Dict[str, Any] = value[_ARRAY_MARKER]
            if payload.get("dtype") == "complex":
                return np.asarray(payload["real"]) + 1j * np.asarray(payload["imag"])
            return np.asarray(payload["data"], dtype=payload.get("dtype", float))
        return {key: from_jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [from_jsonable(item) for item in value]
    return value
