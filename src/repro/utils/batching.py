"""Chunking helpers for the batched multi-instance engine.

The batched solvers and samplers accept arbitrarily large instance batches;
experiment drivers use :func:`iter_batches` to honour a configured
``batch_size`` (memory ceiling / submission granularity) while still feeding
each chunk through the vectorised code path.  Because every instance draws
from its own child generator, results are identical whatever chunking is
chosen.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, TypeVar

Item = TypeVar("Item")

__all__ = ["iter_batches"]


def iter_batches(
    items: Sequence[Item], batch_size: Optional[int] = None
) -> Iterator[Tuple[int, List[Item]]]:
    """Yield ``(start_index, chunk)`` pairs covering ``items`` in order.

    ``batch_size=None`` yields the whole sequence as one chunk (maximum
    batching); otherwise chunks have at most ``batch_size`` items.
    """
    if batch_size is not None and batch_size <= 0:
        raise ValueError(f"batch_size must be positive or None, got {batch_size}")
    total = len(items)
    if total == 0:
        return
    size = total if batch_size is None else batch_size
    for start in range(0, total, size):
        yield start, list(items[start : start + size])
