"""Argument validation helpers used throughout the public API.

Raising :class:`repro.exceptions.ConfigurationError` (rather than a bare
``ValueError``) lets applications distinguish "the caller configured the
library wrong" from genuine numerical or solver failures.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ConfigurationError

__all__ = [
    "require",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_power_of_two",
    "require_probability",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` if condition fails."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: Any, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: Any, name: str) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


def require_in_range(value: Any, low: Any, high: Any, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must lie in [{low}, {high}], got {value!r}"
        )


def require_power_of_two(value: int, name: str) -> None:
    """Require that an integer is a power of two (constellation orders)."""
    if not isinstance(value, (int,)) or value <= 0 or value & (value - 1):
        raise ConfigurationError(f"{name} must be a positive power of two, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require that a float is a valid probability in [0, 1]."""
    require_in_range(value, 0.0, 1.0, name)
