"""Reproducible random number generation.

Every stochastic component in the library (channel synthesis, annealing
samplers, traffic generators) accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises
those three cases into a :class:`numpy.random.Generator` so call sites never
have to special-case the seed type, and :func:`spawn_rngs` derives independent
child generators for parallel or repeated experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

__all__ = ["RandomState", "ensure_rng", "spawn_rngs", "stable_seed"]

# Public alias used in type hints across the library.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a reproducible
        stream, or an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        "seed must be None, an int, or a numpy.random.Generator; "
        f"got {type(seed).__name__}"
    )


def spawn_rngs(seed: RandomState, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    The children are derived through numpy's ``spawn`` mechanism when a
    ``Generator`` is supplied, and through a ``SeedSequence`` when an integer
    seed is supplied, so repeated calls with the same integer seed produce the
    same family of streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]
    sequence = np.random.SeedSequence(seed if seed is not None else None)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def stable_seed(*components: Union[int, str, float]) -> int:
    """Derive a deterministic 32-bit seed from heterogeneous components.

    Used by experiment runners so that (instance index, modulation, size)
    always map to the same synthetic instance regardless of execution order.
    """
    acc = 0x811C9DC5
    for component in components:
        text = repr(component)
        for char in text.encode("utf-8"):
            acc ^= char
            acc = (acc * 0x01000193) & 0xFFFFFFFF
    return acc


def random_bitstring(rng: np.random.Generator, length: int) -> np.ndarray:
    """Return a uniformly random 0/1 vector of the given length."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    return rng.integers(0, 2, size=length, dtype=np.int8)
