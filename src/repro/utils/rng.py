"""Reproducible random number generation.

Every stochastic component in the library (channel synthesis, annealing
samplers, traffic generators) accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises
those three cases into a :class:`numpy.random.Generator` so call sites never
have to special-case the seed type, and :func:`spawn_rngs` derives independent
child generators for parallel or repeated experiments.

The batched engine adds a fourth accepted form: an explicit *sequence* of
generators, one per instance in a batch.  :func:`ensure_rng_batch` normalises
a root seed or such a sequence into a list of per-instance child generators.
Because instance ``b`` only ever consumes randomness from child ``b``, a
batched run and the equivalent sequential loop produce bitwise-identical
results, and experiment outputs do not depend on how instances are grouped
into batches.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

__all__ = [
    "RandomState",
    "BatchRandomState",
    "ensure_rng",
    "ensure_rng_batch",
    "spawn_rngs",
    "stable_seed",
]

# Public alias used in type hints across the library.
RandomState = Union[None, int, np.random.Generator]

# Seed form accepted by batched entry points: a single root (spawned into one
# child per instance) or an explicit per-instance generator sequence.
BatchRandomState = Union[RandomState, Sequence[np.random.Generator]]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a reproducible
        stream, or an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        "seed must be None, an int, or a numpy.random.Generator; "
        f"got {type(seed).__name__}"
    )


def spawn_rngs(seed: RandomState, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    The children are derived through numpy's ``spawn`` mechanism when a
    ``Generator`` is supplied, and through a ``SeedSequence`` when an integer
    seed is supplied, so repeated calls with the same integer seed produce the
    same family of streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]
    sequence = np.random.SeedSequence(seed if seed is not None else None)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def ensure_rng_batch(seed: BatchRandomState, count: int) -> List[np.random.Generator]:
    """Normalise a batch seed specification into ``count`` per-instance generators.

    Accepts everything :func:`ensure_rng` accepts — in which case ``count``
    statistically independent children are spawned from the root — or an
    explicit sequence of :class:`numpy.random.Generator` objects, which is
    validated for length and returned as a list.  Instance ``b`` of a batched
    call must draw exclusively from child ``b``; this is what makes batched
    results independent of how a workload is split into batches.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, (list, tuple)):
        if len(seed) != count:
            raise ValueError(f"{len(seed)} generators supplied for a batch of {count}")
        for item in seed:
            if not isinstance(item, np.random.Generator):
                raise TypeError(
                    "an explicit batch seed must contain numpy.random.Generator "
                    f"objects, got {type(item).__name__}"
                )
        return list(seed)
    return spawn_rngs(seed, count)


def stable_seed(*components: Union[int, str, float]) -> int:
    """Derive a deterministic 32-bit seed from heterogeneous components.

    Used by experiment runners so that (instance index, modulation, size)
    always map to the same synthetic instance regardless of execution order.
    """
    acc = 0x811C9DC5
    for component in components:
        text = repr(component)
        for char in text.encode("utf-8"):
            acc ^= char
            acc = (acc * 0x01000193) & 0xFFFFFFFF
    return acc


def random_bitstring(rng: np.random.Generator, length: int) -> np.ndarray:
    """Return a uniformly random 0/1 vector of the given length."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    return rng.integers(0, 2, size=length, dtype=np.int8)
