"""Link-level error metrics: BER, SER, and EVM.

These metrics quantify how well a detector recovered the transmitted payload
and are used by the example applications and the extension benchmarks that
sweep SNR (the paper's headline experiments are noiseless, so there the only
meaningful metric is whether the exact ML solution was found).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DimensionError

__all__ = ["bit_error_rate", "symbol_error_rate", "error_vector_magnitude"]


def _as_flat_array(values: Sequence, dtype) -> np.ndarray:
    return np.asarray(values, dtype=dtype).ravel()


def bit_error_rate(transmitted_bits: Sequence[int], detected_bits: Sequence[int]) -> float:
    """Fraction of payload bits detected incorrectly."""
    transmitted = _as_flat_array(transmitted_bits, int)
    detected = _as_flat_array(detected_bits, int)
    if transmitted.size != detected.size:
        raise DimensionError(
            f"bit vectors differ in length: {transmitted.size} vs {detected.size}"
        )
    if transmitted.size == 0:
        return 0.0
    return float(np.mean(transmitted != detected))


def symbol_error_rate(
    transmitted_symbols: Sequence[complex],
    detected_symbols: Sequence[complex],
    tolerance: float = 1e-9,
) -> float:
    """Fraction of constellation symbols detected incorrectly.

    Symbols are compared with a small tolerance because detected points are
    reconstructed through floating-point arithmetic.
    """
    transmitted = _as_flat_array(transmitted_symbols, complex)
    detected = _as_flat_array(detected_symbols, complex)
    if transmitted.size != detected.size:
        raise DimensionError(
            f"symbol vectors differ in length: {transmitted.size} vs {detected.size}"
        )
    if transmitted.size == 0:
        return 0.0
    return float(np.mean(np.abs(transmitted - detected) > tolerance))


def error_vector_magnitude(
    reference_symbols: Sequence[complex], measured_symbols: Sequence[complex]
) -> float:
    """Root-mean-square EVM (as a fraction of RMS reference magnitude)."""
    reference = _as_flat_array(reference_symbols, complex)
    measured = _as_flat_array(measured_symbols, complex)
    if reference.size != measured.size:
        raise DimensionError(
            f"symbol vectors differ in length: {reference.size} vs {measured.size}"
        )
    if reference.size == 0:
        return 0.0
    reference_power = float(np.mean(np.abs(reference) ** 2))
    if reference_power == 0:
        raise ValueError("reference symbols have zero power")
    error_power = float(np.mean(np.abs(measured - reference) ** 2))
    return float(np.sqrt(error_power / reference_power))
