"""Spatial-multiplexing MIMO link simulation and exact ML detection.

A *MIMO detection instance* is the tuple (H, y, modulation): the receiver
observes ``y = H x + n`` and must recover the transmitted symbol vector ``x``
whose entries come from a finite constellation.  Maximum-likelihood (ML)
detection minimises ``||y - H x||^2`` over all constellation vectors, which is
the combinatorial problem the paper reduces to QUBO form.

This module provides:

* :class:`MIMOConfig` — the static link configuration (users, antennas,
  modulation, channel model, noise);
* :func:`simulate_transmission` — draw a channel, transmit random bits, and
  produce a :class:`MIMOInstance` together with the ground-truth payload;
* :func:`maximum_likelihood_detect` — exact (exhaustive) ML detection used as
  ground truth by the experiments and metrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DimensionError
from repro.utils.rng import RandomState, ensure_rng
from repro.wireless.channel import (
    ChannelModel,
    UnitGainRandomPhaseChannel,
    apply_channel,
    noise_variance_for_snr,
)
from repro.wireless.fading import ChannelImpairments, FadingChannel, estimate_channel
from repro.wireless.modulation import Modulation, get_modulation

__all__ = [
    "MIMOConfig",
    "MIMOInstance",
    "MIMOTransmission",
    "MIMODetectionResult",
    "simulate_transmission",
    "maximum_likelihood_detect",
    "residual_energy",
]


@dataclass(frozen=True)
class MIMOConfig:
    """Static configuration of a MIMO uplink.

    Attributes
    ----------
    num_users:
        Number of single-antenna transmitters (spatial streams), ``Nt``.
    num_receive_antennas:
        Number of base-station antennas, ``Nr``.  Defaults to ``num_users``
        (the square large-MIMO setting the paper evaluates).
    modulation:
        Canonical modulation name; see :func:`repro.wireless.get_modulation`.
    snr_db:
        Signal-to-noise ratio in dB, or ``None`` for the paper's noiseless
        protocol.
    """

    num_users: int
    modulation: str = "BPSK"
    num_receive_antennas: Optional[int] = None
    snr_db: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise ConfigurationError(f"num_users must be positive, got {self.num_users}")
        receive = self.num_receive_antennas
        if receive is not None and receive <= 0:
            raise ConfigurationError(
                f"num_receive_antennas must be positive, got {receive}"
            )
        # Resolve the modulation eagerly so invalid names fail at config time.
        get_modulation(self.modulation)

    @property
    def receive_antennas(self) -> int:
        """Number of receive antennas (defaults to the number of users)."""
        return self.num_receive_antennas if self.num_receive_antennas else self.num_users

    @property
    def modulation_scheme(self) -> Modulation:
        """The resolved :class:`Modulation` object."""
        return get_modulation(self.modulation)

    @property
    def bits_per_channel_use(self) -> int:
        """Total payload bits carried by one channel use."""
        return self.num_users * self.modulation_scheme.bits_per_symbol

    @property
    def qubo_variable_count(self) -> int:
        """Number of QUBO variables the QuAMax transform produces.

        One variable per payload bit (Sec. 4.2 of the paper describes problem
        sizes in these terms, e.g. "36-variable decoding problems").
        """
        return self.bits_per_channel_use

    @property
    def noise_variance(self) -> float:
        """Complex AWGN variance implied by ``snr_db`` (0 when noiseless)."""
        if self.snr_db is None:
            return 0.0
        return noise_variance_for_snr(
            self.snr_db,
            signal_power=self.modulation_scheme.average_energy(),
            transmit_antennas=self.num_users,
        )


@dataclass(frozen=True)
class MIMOInstance:
    """One detection problem: what the receiver knows.

    Attributes
    ----------
    channel_matrix:
        Complex channel estimate H with shape (Nr, Nt).
    received:
        Complex received vector y with length Nr.
    modulation:
        Modulation name of the transmitted symbols.
    """

    channel_matrix: np.ndarray
    received: np.ndarray
    modulation: str

    def __post_init__(self) -> None:
        channel = np.asarray(self.channel_matrix, dtype=complex)
        received = np.asarray(self.received, dtype=complex).ravel()
        if channel.ndim != 2:
            raise DimensionError("channel_matrix must be 2-D")
        if channel.shape[0] != received.size:
            raise DimensionError(
                f"received vector length {received.size} does not match "
                f"{channel.shape[0]} receive antennas"
            )
        object.__setattr__(self, "channel_matrix", channel)
        object.__setattr__(self, "received", received)

    @property
    def num_users(self) -> int:
        """Number of transmitted spatial streams."""
        return int(self.channel_matrix.shape[1])

    @property
    def num_receive_antennas(self) -> int:
        """Number of receive antennas."""
        return int(self.channel_matrix.shape[0])

    @property
    def modulation_scheme(self) -> Modulation:
        """The resolved :class:`Modulation` for this instance."""
        return get_modulation(self.modulation)

    @property
    def qubo_variable_count(self) -> int:
        """QUBO size produced by the QuAMax transform for this instance."""
        return self.num_users * self.modulation_scheme.bits_per_symbol

    def objective(self, candidate_symbols: Sequence[complex]) -> float:
        """ML objective ``||y - H x||^2`` for a candidate symbol vector."""
        return residual_energy(self.channel_matrix, self.received, candidate_symbols)


@dataclass(frozen=True)
class MIMOTransmission:
    """A simulated transmission: the instance plus the ground-truth payload.

    Under imperfect CSI the receiver-visible ``instance.channel_matrix`` is
    the *pilot estimate*; ``true_channel`` then records the realisation the
    symbols actually propagated through (``None`` means the estimate is
    exact).  ``csi_error_variance`` and ``interference_power`` record the
    impairment levels the transmission was simulated under, so metrics can
    tell the paper's idealized protocol apart from robustness sweeps.
    """

    instance: MIMOInstance
    transmitted_symbols: np.ndarray
    transmitted_bits: np.ndarray
    noise_variance: float
    true_channel: Optional[np.ndarray] = None
    csi_error_variance: float = 0.0
    interference_power: float = 0.0

    @property
    def actual_channel(self) -> np.ndarray:
        """The channel the symbols really traversed (estimate if CSI is perfect)."""
        if self.true_channel is not None:
            return self.true_channel
        return self.instance.channel_matrix

    @property
    def has_perfect_csi(self) -> bool:
        """Whether the receiver's channel matrix equals the true channel."""
        return self.true_channel is None

    @property
    def config_summary(self) -> str:
        """Short human-readable description of the transmission."""
        return (
            f"{self.instance.num_users}-user {self.instance.modulation} "
            f"({self.instance.qubo_variable_count} QUBO variables)"
        )


@dataclass(frozen=True)
class MIMODetectionResult:
    """Outcome of a detection algorithm on one instance."""

    symbols: np.ndarray
    bits: np.ndarray
    objective_value: float
    algorithm: str = "ml-exhaustive"
    metadata: dict = field(default_factory=dict)


def residual_energy(
    channel_matrix: np.ndarray,
    received: np.ndarray,
    candidate_symbols: Sequence[complex],
) -> float:
    """Compute ``||y - H x||^2`` for a candidate symbol vector."""
    channel_matrix = np.asarray(channel_matrix, dtype=complex)
    received = np.asarray(received, dtype=complex).ravel()
    candidate = np.asarray(candidate_symbols, dtype=complex).ravel()
    if candidate.size != channel_matrix.shape[1]:
        raise DimensionError(
            f"candidate has {candidate.size} symbols but channel expects "
            f"{channel_matrix.shape[1]}"
        )
    residual = received - channel_matrix @ candidate
    return float(np.real(np.vdot(residual, residual)))


def simulate_transmission(
    config: MIMOConfig,
    channel_model: Optional[ChannelModel] = None,
    rng: RandomState = None,
    impairments: Optional[ChannelImpairments] = None,
    channel_matrix: Optional[np.ndarray] = None,
) -> MIMOTransmission:
    """Simulate one channel use under ``config``.

    Draws a channel realisation, random payload bits, modulates them, applies
    the channel and (optionally) AWGN, and returns both the receiver-visible
    :class:`MIMOInstance` and the ground truth needed for error accounting.

    ``impairments`` layers the realistic-channel engine on top
    (:mod:`repro.wireless.fading`): spatial correlation / Rician LoS shape
    the channel draw, interference adds to the noise floor, and with a
    non-zero CSI error variance the returned instance carries the *pilot
    estimate* while the received vector is produced by the *true* channel.
    ``None`` (and the identity configuration) reproduce the unimpaired path
    bitwise.  ``channel_matrix`` supplies a pre-drawn true channel — the way
    a :class:`~repro.wireless.fading.FadingProcess` feeds temporally
    correlated block fading through this function — skipping the draw.

    The per-use draw order is fixed: channel (unless supplied), payload
    bits, noise+interference, then the CSI estimation error, so disabled
    impairments never consume randomness and never shift the other draws.
    """
    generator = ensure_rng(rng)
    modulation = config.modulation_scheme
    active = impairments is not None and not impairments.is_identity

    if channel_matrix is not None:
        channel = np.asarray(channel_matrix, dtype=complex)
        expected = (config.receive_antennas, config.num_users)
        if channel.shape != expected:
            raise DimensionError(
                f"channel_matrix has shape {channel.shape}, expected {expected}"
            )
    else:
        if active and impairments.has_spatial_structure:
            model: ChannelModel = FadingChannel(impairments, base_model=channel_model)
        elif channel_model is not None:
            model = channel_model
        elif active:
            # Impairments without spatial structure still imply the fading
            # engine's scattering statistics (Rayleigh), not the paper's
            # unit-gain protocol channel.
            model = FadingChannel(impairments)
        else:
            model = UnitGainRandomPhaseChannel()
        channel = model.sample(config.receive_antennas, config.num_users, generator)

    bits = modulation.random_bits(config.num_users, generator)
    symbols = modulation.modulate_bits(bits)
    noise_variance = config.noise_variance
    interference_power = impairments.interference_power if active else 0.0
    received = apply_channel(
        channel,
        symbols,
        noise_variance,
        generator,
        interference_power=interference_power,
    )

    csi_error_variance = impairments.csi_error_variance if active else 0.0
    if csi_error_variance > 0:
        visible = estimate_channel(channel, csi_error_variance, generator)
        true_channel: Optional[np.ndarray] = channel
    else:
        visible = channel
        true_channel = None

    instance = MIMOInstance(
        channel_matrix=visible, received=received, modulation=config.modulation
    )
    return MIMOTransmission(
        instance=instance,
        transmitted_symbols=symbols,
        transmitted_bits=bits,
        noise_variance=noise_variance,
        true_channel=true_channel,
        csi_error_variance=csi_error_variance,
        interference_power=interference_power,
    )


def maximum_likelihood_detect(
    instance: MIMOInstance, max_variables: int = 24
) -> MIMODetectionResult:
    """Exhaustive maximum-likelihood detection.

    Enumerates every constellation vector, so the cost is
    ``M ** num_users``; the ``max_variables`` guard (measured in equivalent
    QUBO variables, i.e. payload bits) protects against accidental
    exponential blow-ups.  Experiments that need exact optima for larger
    instances should use the QUBO-domain exhaustive solver on the transformed
    problem instead, which is equivalent but shares its implementation with
    the solver stack.
    """
    modulation = instance.modulation_scheme
    total_bits = instance.qubo_variable_count
    if total_bits > max_variables:
        raise ConfigurationError(
            f"exhaustive ML over {total_bits} bits exceeds max_variables="
            f"{max_variables}; raise the limit explicitly if this is intended"
        )

    best_objective = np.inf
    best_indices: Tuple[int, ...] = ()
    for indices in itertools.product(range(modulation.order), repeat=instance.num_users):
        candidate = modulation.modulate_indices(indices)
        objective = instance.objective(candidate)
        if objective < best_objective:
            best_objective = objective
            best_indices = indices

    symbols = modulation.modulate_indices(best_indices)
    bits = np.concatenate(
        [np.asarray(modulation.bits_for_index(index), dtype=int) for index in best_indices]
    )
    return MIMODetectionResult(
        symbols=symbols,
        bits=bits,
        objective_value=float(best_objective),
        algorithm="ml-exhaustive",
        metadata={"enumerated": modulation.order ** instance.num_users},
    )
