"""Successive channel-use traffic generation for the pipelining study.

Paper Figure 2 sketches a pipelined hybrid architecture in which data from
successive wireless *channel uses* flow through classical and quantum
processing stages.  To quantify that design (experiment E-F2 in DESIGN.md)
the pipeline simulator needs a stream of timestamped detection jobs; this
module generates it.

Arrival processes supported:

* deterministic — one channel use every ``symbol_period_us`` microseconds,
  matching a continuously loaded OFDM frame;
* poisson — exponentially distributed inter-arrival times with the same mean,
  modelling bursty uplink traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.wireless.channel import ChannelModel, UnitGainRandomPhaseChannel
from repro.wireless.mimo import MIMOConfig, MIMOTransmission, simulate_transmission

__all__ = ["ChannelUse", "TrafficGenerator"]


@dataclass(frozen=True)
class ChannelUse:
    """One timestamped detection job entering the processing pipeline.

    Attributes
    ----------
    index:
        Sequence number of the channel use (0-based).
    arrival_time_us:
        Arrival time at the baseband processor, in microseconds.
    transmission:
        The simulated transmission (instance + ground truth payload).
    deadline_us:
        Absolute processing deadline (arrival + turnaround budget), or
        ``None`` when no deadline applies.
    """

    index: int
    arrival_time_us: float
    transmission: MIMOTransmission
    deadline_us: Optional[float] = None

    @property
    def has_deadline(self) -> bool:
        """Whether this channel use carries a turnaround deadline."""
        return self.deadline_us is not None


class TrafficGenerator:
    """Generate a stream of :class:`ChannelUse` jobs for the pipeline simulator.

    Parameters
    ----------
    config:
        MIMO link configuration shared by every channel use.
    symbol_period_us:
        Mean spacing between successive channel uses, in microseconds.  The
        default of 71.4 us corresponds to an LTE OFDM symbol (including the
        normal cyclic prefix); 5G NR numerologies use shorter periods.
    arrival_process:
        ``"deterministic"`` or ``"poisson"``.
    turnaround_budget_us:
        Per-channel-use processing deadline relative to arrival (the link
        layer's ARQ turnaround the paper's introduction describes), or
        ``None`` to disable deadlines.
    channel_model:
        Channel model used to draw each channel use's realisation.
    """

    def __init__(
        self,
        config: MIMOConfig,
        symbol_period_us: float = 71.4,
        arrival_process: str = "deterministic",
        turnaround_budget_us: Optional[float] = None,
        channel_model: Optional[ChannelModel] = None,
    ) -> None:
        if symbol_period_us <= 0:
            raise ConfigurationError(
                f"symbol_period_us must be positive, got {symbol_period_us}"
            )
        if arrival_process not in ("deterministic", "poisson"):
            raise ConfigurationError(
                "arrival_process must be 'deterministic' or 'poisson', "
                f"got {arrival_process!r}"
            )
        if turnaround_budget_us is not None and turnaround_budget_us <= 0:
            raise ConfigurationError(
                f"turnaround_budget_us must be positive, got {turnaround_budget_us}"
            )
        self.config = config
        self.symbol_period_us = float(symbol_period_us)
        self.arrival_process = arrival_process
        self.turnaround_budget_us = turnaround_budget_us
        self.channel_model = channel_model if channel_model is not None else UnitGainRandomPhaseChannel()

    def generate(self, count: int, rng: RandomState = None) -> List[ChannelUse]:
        """Materialise ``count`` channel uses as a list."""
        return list(self.stream(count, rng))

    def stream(self, count: int, rng: RandomState = None) -> Iterator[ChannelUse]:
        """Yield ``count`` channel uses lazily (useful for long simulations)."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        generator = ensure_rng(rng)
        arrival_time = 0.0
        for index in range(count):
            if index > 0:
                arrival_time += self._inter_arrival(generator)
            transmission = simulate_transmission(self.config, self.channel_model, generator)
            deadline = (
                arrival_time + self.turnaround_budget_us
                if self.turnaround_budget_us is not None
                else None
            )
            yield ChannelUse(
                index=index,
                arrival_time_us=arrival_time,
                transmission=transmission,
                deadline_us=deadline,
            )

    def _inter_arrival(self, rng: np.random.Generator) -> float:
        if self.arrival_process == "deterministic":
            return self.symbol_period_us
        return float(rng.exponential(self.symbol_period_us))

    def offered_load_bits_per_us(self) -> float:
        """Average offered payload load in bits per microsecond."""
        return self.config.bits_per_channel_use / self.symbol_period_us
