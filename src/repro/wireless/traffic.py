"""Successive channel-use traffic generation for the pipelining study.

Paper Figure 2 sketches a pipelined hybrid architecture in which data from
successive wireless *channel uses* flow through classical and quantum
processing stages.  To quantify that design (experiment E-F2 in DESIGN.md)
the pipeline simulator needs a stream of timestamped detection jobs; this
module generates it.

Arrival processes supported:

* deterministic — one channel use every ``symbol_period_us`` microseconds,
  matching a continuously loaded OFDM frame;
* poisson — exponentially distributed inter-arrival times with the same mean,
  modelling bursty uplink traffic.

A generator may also carry a *heterogeneous job mix*: a sequence of MIMO
configurations (different modulations and antenna counts) that successive
channel uses draw from, either cyclically or at random.  This models a user
whose scheduler adapts modulation and rank over time, and it is what the RAN
serving simulator (:mod:`repro.serving`) uses to produce realistically mixed
detection workloads.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.wireless.channel import ChannelModel, UnitGainRandomPhaseChannel
from repro.wireless.fading import ChannelImpairments, FadingProcess
from repro.wireless.mimo import MIMOConfig, MIMOTransmission, simulate_transmission

__all__ = ["ChannelUse", "TrafficGenerator"]


@dataclass(frozen=True)
class ChannelUse:
    """One timestamped detection job entering the processing pipeline.

    Attributes
    ----------
    index:
        Sequence number of the channel use (0-based).
    arrival_time_us:
        Arrival time at the baseband processor, in microseconds.
    transmission:
        The simulated transmission (instance + ground truth payload).
    deadline_us:
        Absolute processing deadline (arrival + turnaround budget), or
        ``None`` when no deadline applies.  When present it must lie strictly
        after the arrival time — a job that is born already expired is a
        configuration error, not a schedulable workload.
    """

    index: int
    arrival_time_us: float
    transmission: MIMOTransmission
    deadline_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.deadline_us is not None and self.deadline_us <= self.arrival_time_us:
            raise ConfigurationError(
                f"deadline_us ({self.deadline_us}) must be strictly greater than "
                f"arrival_time_us ({self.arrival_time_us})"
            )

    @property
    def has_deadline(self) -> bool:
        """Whether this channel use carries a turnaround deadline."""
        return self.deadline_us is not None

    @property
    def qubo_variable_count(self) -> int:
        """QUBO size of this channel use's detection problem."""
        return self.transmission.instance.qubo_variable_count

    @property
    def modulation(self) -> str:
        """Modulation name of this channel use."""
        return self.transmission.instance.modulation


class TrafficGenerator:
    """Generate a stream of :class:`ChannelUse` jobs for the pipeline simulator.

    Parameters
    ----------
    config:
        MIMO link configuration shared by every channel use, or a sequence of
        configurations forming a heterogeneous job mix (successive channel
        uses then vary in modulation and/or antenna count).
    symbol_period_us:
        Mean spacing between successive channel uses, in microseconds.  The
        default of 71.4 us corresponds to an LTE OFDM symbol (including the
        normal cyclic prefix); 5G NR numerologies use shorter periods.
    arrival_process:
        ``"deterministic"`` or ``"poisson"``.
    turnaround_budget_us:
        Per-channel-use processing deadline relative to arrival (the link
        layer's ARQ turnaround the paper's introduction describes), or
        ``None`` to disable deadlines.
    channel_model:
        Channel model used to draw each channel use's realisation.
    job_mix:
        How a multi-configuration mix is sampled: ``"cyclic"`` walks the
        sequence round-robin (deterministic), ``"random"`` draws uniformly
        per channel use from the stream's generator.  Ignored for a single
        configuration, where no mix randomness is ever consumed — existing
        single-configuration streams are unchanged.
    impairments:
        Optional :class:`~repro.wireless.fading.ChannelImpairments`.  When
        active (non-identity), every channel use's realisation comes from a
        per-link-shape :class:`~repro.wireless.fading.FadingProcess` — so a
        user's successive blocks are temporally correlated per the Jakes
        model — and CSI error / interference apply per use.  ``None`` and
        the identity configuration leave the stream bitwise-identical to
        the unimpaired generator.
    interference_scale:
        Optional map from a channel use's arrival time (us) to a
        non-negative multiplier on ``impairments.interference_power`` — the
        hook the serving layer uses to couple interference to neighbouring
        cells' time-varying load.  Requires ``impairments``.
    """

    def __init__(
        self,
        config: Union[MIMOConfig, Sequence[MIMOConfig]],
        symbol_period_us: float = 71.4,
        arrival_process: str = "deterministic",
        turnaround_budget_us: Optional[float] = None,
        channel_model: Optional[ChannelModel] = None,
        job_mix: str = "cyclic",
        impairments: Optional[ChannelImpairments] = None,
        interference_scale: Optional[Callable[[float], float]] = None,
    ) -> None:
        if symbol_period_us <= 0:
            raise ConfigurationError(
                f"symbol_period_us must be positive, got {symbol_period_us}"
            )
        if arrival_process not in ("deterministic", "poisson"):
            raise ConfigurationError(
                "arrival_process must be 'deterministic' or 'poisson', "
                f"got {arrival_process!r}"
            )
        if turnaround_budget_us is not None and turnaround_budget_us <= 0:
            raise ConfigurationError(
                f"turnaround_budget_us must be positive, got {turnaround_budget_us}"
            )
        if job_mix not in ("cyclic", "random"):
            raise ConfigurationError(
                f"job_mix must be 'cyclic' or 'random', got {job_mix!r}"
            )
        configs: Tuple[MIMOConfig, ...]
        if isinstance(config, MIMOConfig):
            configs = (config,)
        else:
            configs = tuple(config)
            if not configs:
                raise ConfigurationError("config sequence must not be empty")
            for item in configs:
                if not isinstance(item, MIMOConfig):
                    raise ConfigurationError(
                        f"config sequence must contain MIMOConfig objects, got "
                        f"{type(item).__name__}"
                    )
        if interference_scale is not None and impairments is None:
            raise ConfigurationError(
                "interference_scale modulates impairment interference; supply "
                "impairments as well"
            )
        self.configs = configs
        self.config = configs[0]
        self.symbol_period_us = float(symbol_period_us)
        self.arrival_process = arrival_process
        self.turnaround_budget_us = turnaround_budget_us
        self.channel_model = (
            channel_model if channel_model is not None else UnitGainRandomPhaseChannel()
        )
        self.job_mix = job_mix
        self.impairments = impairments
        self.interference_scale = interference_scale
        # Identity impairments leave the configured channel_model in charge
        # (bitwise-unchanged streams); active impairments route channel
        # realisations through per-shape fading processes whose scattering
        # base is an *explicitly* supplied model, else the engine's Rayleigh
        # default (the unit-gain protocol channel has no spatial/temporal
        # structure to impair).
        self._active_impairments = (
            impairments if impairments is not None and not impairments.is_identity else None
        )
        self._fading_base = channel_model

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the stream mixes more than one link configuration."""
        return len(self.configs) > 1

    def generate(self, count: int, rng: RandomState = None) -> List[ChannelUse]:
        """Materialise ``count`` channel uses as a list."""
        return list(self.stream(count, rng))

    def stream(self, count: int, rng: RandomState = None) -> Iterator[ChannelUse]:
        """Yield ``count`` channel uses lazily (useful for long simulations)."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        # Each stream is its own coherence run: the fading-process map is
        # local to this invocation, so re-streaming the same generator with
        # the same seed is bitwise-identical and concurrent streams of one
        # generator cannot corrupt each other's temporal state.
        processes: Dict[Tuple[int, int], FadingProcess] = {}
        generator = ensure_rng(rng)
        arrival_time = 0.0
        for index in range(count):
            if index > 0:
                arrival_time += self._inter_arrival(generator)
            yield self._emit(index, arrival_time, generator, processes)

    def _emit(
        self,
        index: int,
        arrival_time_us: float,
        rng: np.random.Generator,
        processes: Dict[Tuple[int, int], FadingProcess],
    ) -> ChannelUse:
        """Realise one channel use at a fixed arrival time.

        Shared by the homogeneous and modulated streams so both arrival
        processes derive configs, channel realisations and deadlines
        identically (and in the same per-use randomness order).
        ``processes`` is the calling stream's private fading-state map.
        """
        config = self._config_for(index, rng)
        if self._active_impairments is None:
            transmission = simulate_transmission(config, self.channel_model, rng)
        else:
            transmission = self._emit_impaired(config, arrival_time_us, rng, processes)
        deadline = (
            arrival_time_us + self.turnaround_budget_us
            if self.turnaround_budget_us is not None
            else None
        )
        return ChannelUse(
            index=index,
            arrival_time_us=arrival_time_us,
            transmission=transmission,
            deadline_us=deadline,
        )

    def _emit_impaired(
        self,
        config: MIMOConfig,
        arrival_time_us: float,
        rng: np.random.Generator,
        processes: Dict[Tuple[int, int], FadingProcess],
    ) -> MIMOTransmission:
        """One channel use under active impairments (fading process + scaling)."""
        impairments = self._active_impairments
        shape = (config.receive_antennas, config.num_users)
        process = processes.get(shape)
        if process is None:
            process = FadingProcess(
                shape[0], shape[1], impairments, base_model=self._fading_base
            )
            processes[shape] = process
        channel = process.advance(rng)
        if self.interference_scale is not None:
            scale = float(self.interference_scale(arrival_time_us))
            if scale < 0:
                raise ConfigurationError(
                    f"interference_scale must be non-negative, got {scale} "
                    f"at t={arrival_time_us}"
                )
            impairments = dataclasses.replace(
                impairments,
                interference_power=impairments.interference_power * scale,
            )
        return simulate_transmission(
            config, rng=rng, impairments=impairments, channel_matrix=channel
        )

    def stream_modulated(
        self,
        horizon_us: float,
        intensity: Callable[[float], float],
        peak_intensity: float,
        rng: RandomState = None,
        max_count: Optional[int] = None,
        start_us: float = 0.0,
    ) -> Iterator[ChannelUse]:
        """Yield an inhomogeneous-Poisson stream over ``[start_us, horizon_us)``.

        ``intensity(t_us)`` is a non-negative multiplier on the generator's
        nominal rate ``1 / symbol_period_us`` (so 1.0 reproduces the mean
        homogeneous rate, 0.0 silences the stream) and ``peak_intensity``
        must bound it from above.  Arrivals are drawn by Ogata thinning:
        candidates arrive at the majorising rate ``peak / period`` and are
        accepted with probability ``intensity(t) / peak``.  All randomness —
        candidate times, acceptance draws, mix choices, channel realisations
        — comes from the single supplied generator, so a fixed seed yields a
        bitwise-identical stream (the time-varying analogue of the
        homogeneous :meth:`stream` guarantee).

        The modulated stream is inherently Poisson; a generator configured
        with ``arrival_process="deterministic"`` is rejected rather than
        silently changing semantics.
        """
        if self.arrival_process != "poisson":
            raise ConfigurationError(
                "stream_modulated generates inhomogeneous Poisson arrivals; "
                f"arrival_process must be 'poisson', got {self.arrival_process!r}"
            )
        if horizon_us <= 0:
            raise ConfigurationError(f"horizon_us must be positive, got {horizon_us}")
        if peak_intensity <= 0:
            raise ConfigurationError(
                f"peak_intensity must be positive, got {peak_intensity}"
            )
        if start_us < 0:
            raise ConfigurationError(f"start_us must be non-negative, got {start_us}")
        if max_count is not None and max_count < 0:
            raise ConfigurationError(
                f"max_count must be non-negative, got {max_count}"
            )
        # Fresh coherence run per stream; see :meth:`stream`.
        processes: Dict[Tuple[int, int], FadingProcess] = {}
        generator = ensure_rng(rng)
        mean_gap_us = self.symbol_period_us / peak_intensity
        arrival_time = start_us
        index = 0
        while max_count is None or index < max_count:
            arrival_time += float(generator.exponential(mean_gap_us))
            if arrival_time >= horizon_us:
                return
            multiplier = float(intensity(arrival_time))
            if multiplier < 0:
                raise ConfigurationError(
                    f"intensity must be non-negative, got {multiplier} "
                    f"at t={arrival_time}"
                )
            if multiplier > peak_intensity * (1.0 + 1e-9):
                raise ConfigurationError(
                    f"intensity {multiplier} exceeds peak_intensity "
                    f"{peak_intensity} at t={arrival_time}"
                )
            # Strict inequality: a u=0 draw must not accept a silent (m=0)
            # instant, and m=peak accepts every u in [0, 1).
            if float(generator.uniform()) * peak_intensity >= multiplier:
                continue
            yield self._emit(index, arrival_time, generator, processes)
            index += 1

    def _config_for(self, index: int, rng: np.random.Generator) -> MIMOConfig:
        if len(self.configs) == 1:
            return self.configs[0]
        if self.job_mix == "cyclic":
            return self.configs[index % len(self.configs)]
        return self.configs[int(rng.integers(len(self.configs)))]

    def _inter_arrival(self, rng: np.random.Generator) -> float:
        if self.arrival_process == "deterministic":
            return self.symbol_period_us
        return float(rng.exponential(self.symbol_period_us))

    @property
    def nominal_rate_per_us(self) -> float:
        """Nominal arrival rate (jobs per microsecond) at intensity 1.0.

        The aggregate-traffic layer (:mod:`repro.network.aggregate`) sums
        this over a cell's population to size the cell's Poisson counters.
        """
        return 1.0 / self.symbol_period_us

    def offered_load_bits_per_us(self) -> float:
        """Average offered payload load in bits per microsecond.

        For a heterogeneous mix this is the mean over the mix (exact for the
        cyclic mix, the expectation for the random mix).
        """
        mean_bits = float(np.mean([config.bits_per_channel_use for config in self.configs]))
        return mean_bits / self.symbol_period_us
