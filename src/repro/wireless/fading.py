"""Realistic channel impairments: correlation, Doppler, imperfect CSI, interference.

The paper's experimental protocol (Sec. 4.2) evaluates detection over
idealized channels — i.i.d. entries, a fresh independent realisation per
channel use, perfectly known at the receiver, no interference.  Deployed
base stations see none of those luxuries, and the case for hybrid
classical-quantum RAN processing has to survive realistic radio conditions.
This module provides a *composable* impairment engine layered on top of the
ideal models in :mod:`repro.wireless.channel`:

* **Spatial correlation** — the Kronecker model ``H = L_rx W L_tx^T`` with
  exponential correlation matrices ``R[i, j] = rho^|i - j|`` on each side
  (:class:`FadingChannel`), plus a Rician line-of-sight component built from
  uniform-linear-array steering vectors (``rician_k``).
* **Temporal correlation** — block fading evolved by a first-order
  autoregression whose coefficient is the Jakes-spectrum autocorrelation
  ``J_0(2 pi f_D T)`` at the Doppler frequency implied by user velocity
  (:class:`FadingProcess`, :func:`jakes_correlation`).
* **Imperfect CSI** — a pilot-based estimation-error model: the receiver
  works from ``H_hat = H + E`` with ``E ~ CN(0, sigma_e^2)`` per entry
  (:func:`estimate_channel`, :func:`pilot_csi_error_variance`), so QUBOs are
  built from the *estimate* while symbols propagate through the *true*
  channel.
* **Inter-cell interference** — a per-receive-antenna Gaussian interference
  floor (the standard many-interferer approximation) whose power the serving
  layer couples to per-cell load factors and scenario timelines
  (:meth:`ChannelImpairments.interference_for_load`).

Everything is driven by one frozen :class:`ChannelImpairments` configuration
whose default is the *identity*: zero correlation, no Doppler evolution,
perfect CSI, zero interference.  The identity configuration is guaranteed to
consume the same random draws in the same order as the unimpaired code
paths, so existing experiment outputs reproduce bitwise.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive
from repro.wireless.channel import ChannelModel, RayleighFadingChannel, awgn

__all__ = [
    "SPEED_OF_LIGHT_MPS",
    "ChannelImpairments",
    "FadingChannel",
    "FadingProcess",
    "bessel_j0",
    "correlation_root",
    "estimate_channel",
    "exponential_correlation",
    "handover_rate_per_us",
    "jakes_correlation",
    "los_matrix",
    "pilot_csi_error_variance",
    "steering_vector",
]

#: Propagation speed used to convert velocity to Doppler shift, in m/s.
SPEED_OF_LIGHT_MPS = 299_792_458.0


# --------------------------------------------------------------------- #
# Spatial correlation
# --------------------------------------------------------------------- #


def exponential_correlation(size: int, rho: float) -> np.ndarray:
    """The exponential correlation matrix ``R[i, j] = rho ** |i - j|``.

    The single-parameter model of Loyka for a uniform linear array: adjacent
    antennas correlate with coefficient ``rho`` and the correlation decays
    geometrically with element separation.  ``rho`` must lie in ``[0, 1)`` —
    at 1 the matrix is singular (all antennas see one channel).
    """
    require_positive(size, "size")
    if not 0.0 <= rho < 1.0:
        raise ConfigurationError(f"correlation rho must lie in [0, 1), got {rho}")
    indices = np.arange(size)
    return rho ** np.abs(indices[:, None] - indices[None, :])


@functools.lru_cache(maxsize=None)
def _correlation_root_cached(size: int, rho: float) -> np.ndarray:
    root = np.linalg.cholesky(exponential_correlation(size, rho))
    root.setflags(write=False)
    return root


def correlation_root(size: int, rho: float) -> np.ndarray:
    """Lower-triangular root ``L`` with ``L L^T = R`` (memoized per shape).

    Colouring i.i.d. draws as ``L W`` imposes the exponential correlation
    ``R`` on the rows; the returned array is read-only because it is shared
    across calls.
    """
    return _correlation_root_cached(int(size), float(rho))


def steering_vector(size: int, angle_deg: float) -> np.ndarray:
    """Far-field steering vector of a half-wavelength uniform linear array.

    ``a[k] = exp(j * pi * k * sin(angle))`` — unit-magnitude entries, so a
    LoS matrix built from steering vectors preserves average channel power.
    """
    require_positive(size, "size")
    phase = math.pi * math.sin(math.radians(angle_deg))
    return np.exp(1j * phase * np.arange(size))


def los_matrix(
    receive_antennas: int,
    transmit_antennas: int,
    aoa_deg: float,
    aod_deg: float,
) -> np.ndarray:
    """Rank-one line-of-sight channel ``a_rx(aoa) a_tx(aod)^H``.

    The deterministic component of the Rician model: a single planar
    wavefront arriving at angle ``aoa_deg`` after departing at ``aod_deg``.
    Every entry has unit magnitude.
    """
    arrival = steering_vector(receive_antennas, aoa_deg)
    departure = steering_vector(transmit_antennas, aod_deg)
    return np.outer(arrival, departure.conj())


# --------------------------------------------------------------------- #
# Temporal correlation (Jakes / Clarke spectrum)
# --------------------------------------------------------------------- #


# Abramowitz & Stegun 9.4.1 / 9.4.3 polynomial coefficients, ascending order.
_J0_SMALL = (1.0, -2.2499997, 1.2656208, -0.3163866, 0.0444479, -0.0039444, 0.0002100)
_J0_AMPLITUDE = (
    0.79788456,
    -0.00000077,
    -0.00552740,
    -0.00009512,
    0.00137237,
    -0.00072805,
    0.00014476,
)
_J0_PHASE = (
    -0.78539816,
    -0.04166397,
    -0.00003954,
    0.00262573,
    -0.00054125,
    -0.00029333,
    0.00013558,
)


def _polynomial(coefficients: Sequence[float], t: float) -> float:
    """Evaluate an ascending-order polynomial at ``t`` by Horner's rule."""
    result = 0.0
    for coefficient in reversed(coefficients):
        result = result * t + coefficient
    return result


def bessel_j0(x: float) -> float:
    """Bessel function of the first kind, order zero.

    Abramowitz & Stegun 9.4.1 / 9.4.3 polynomial approximations (absolute
    error below 5e-8), so the Jakes autocorrelation needs no scipy
    dependency.
    """
    ax = abs(float(x))
    if ax <= 3.0:
        return _polynomial(_J0_SMALL, (ax / 3.0) ** 2)
    t = 3.0 / ax
    theta = ax + _polynomial(_J0_PHASE, t)
    return _polynomial(_J0_AMPLITUDE, t) * math.cos(theta) / math.sqrt(ax)


def jakes_correlation(
    velocity_mps: float,
    carrier_frequency_ghz: float = 3.5,
    block_period_us: float = 71.4,
) -> float:
    """Block-to-block fading correlation under the Jakes Doppler spectrum.

    A user moving at ``velocity_mps`` sees the maximum Doppler shift
    ``f_D = v * f_c / c``; under Clarke's isotropic-scattering model the
    channel autocorrelation one block period ``T`` later is
    ``J_0(2 pi f_D T)``.  Zero velocity gives 1.0 (a static channel);
    highway speeds at mid-band 5G decorrelate successive blocks.
    """
    if velocity_mps < 0:
        raise ConfigurationError(f"velocity_mps must be non-negative, got {velocity_mps}")
    require_positive(carrier_frequency_ghz, "carrier_frequency_ghz")
    require_positive(block_period_us, "block_period_us")
    doppler_hz = velocity_mps * carrier_frequency_ghz * 1e9 / SPEED_OF_LIGHT_MPS
    return bessel_j0(2.0 * math.pi * doppler_hz * block_period_us * 1e-6)


def handover_rate_per_us(velocity_mps: float, cell_radius_m: float = 250.0) -> float:
    """Mean cell-boundary crossings per microsecond of a mobile user.

    The classic fluid-flow mobility model: a user moving at ``velocity_mps``
    with uniformly distributed direction inside a circular cell of radius
    ``R`` crosses the boundary at rate ``2 v / (pi R)`` per second (crossing
    rate = v * perimeter / (pi * area)).  This couples handover frequency to
    the *same* velocity that drives the Jakes Doppler spectrum — a fast user
    both fades harder (:func:`jakes_correlation`) and hands over more.  Zero
    velocity gives a static user that never hands over.
    """
    if velocity_mps < 0:
        raise ConfigurationError(f"velocity_mps must be non-negative, got {velocity_mps}")
    require_positive(cell_radius_m, "cell_radius_m")
    return 2.0 * velocity_mps / (math.pi * cell_radius_m) * 1e-6


# --------------------------------------------------------------------- #
# Imperfect CSI
# --------------------------------------------------------------------- #


def pilot_csi_error_variance(pilot_snr_db: float, num_pilots: int = 1) -> float:
    """Per-entry estimation-error variance of least-squares pilot estimation.

    With ``num_pilots`` orthogonal unit-energy pilot symbols at SNR
    ``pilot_snr_db``, the LS channel estimate carries independent complex
    Gaussian error of variance ``1 / (num_pilots * snr)`` per entry — more
    pilots or a cleaner pilot channel shrink the error floor.
    """
    require_positive(num_pilots, "num_pilots")
    snr_linear = 10.0 ** (pilot_snr_db / 10.0)
    return float(1.0 / (num_pilots * snr_linear))


def estimate_channel(
    true_channel: np.ndarray,
    error_variance: float,
    rng: RandomState = None,
) -> np.ndarray:
    """Pilot-based channel estimate ``H_hat = H + E`` with ``E ~ CN(0, var)``.

    A zero ``error_variance`` returns the true channel unchanged *without
    consuming any randomness*, which is what keeps the perfect-CSI code path
    bitwise-identical to the pre-impairment library.
    """
    if error_variance < 0:
        raise ConfigurationError(f"error_variance must be non-negative, got {error_variance}")
    true_channel = np.asarray(true_channel, dtype=complex)
    if error_variance == 0:
        return true_channel
    return true_channel + awgn(true_channel.shape, error_variance, rng)


# --------------------------------------------------------------------- #
# The impairment configuration
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ChannelImpairments:
    """One composable description of every supported channel impairment.

    Attributes
    ----------
    rx_correlation / tx_correlation:
        Exponential spatial correlation coefficients at the receive and
        transmit arrays (``[0, 1)``; 0 disables the Kronecker colouring).
    rician_k:
        Rician K-factor (linear power ratio of the LoS component to the
        scattered component), or ``None`` for pure Rayleigh scattering.
    los_aoa_deg / los_aod_deg:
        Angles of arrival/departure of the LoS wavefront (used only when
        ``rician_k`` is set).
    temporal_correlation:
        Block-to-block AR(1) fading coefficient in ``[-1, 1]`` (the Jakes
        autocorrelation; see :func:`jakes_correlation` and
        :meth:`from_mobility`).  ``None`` or 0 draws an independent channel
        per block, matching the unimpaired library.
    csi_error_variance:
        Per-entry variance of the pilot estimation error (0 = perfect CSI).
    interference_power:
        Inter-cell interference power per receive antenna, in the same
        units as the AWGN variance (0 = no interference).  The serving
        layer scales this with neighbouring cells' load.
    """

    rx_correlation: float = 0.0
    tx_correlation: float = 0.0
    rician_k: Optional[float] = None
    los_aoa_deg: float = 30.0
    los_aod_deg: float = 20.0
    temporal_correlation: Optional[float] = None
    csi_error_variance: float = 0.0
    interference_power: float = 0.0

    def __post_init__(self) -> None:
        for name in ("rx_correlation", "tx_correlation"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1), got {value}")
        if self.rician_k is not None and self.rician_k < 0:
            raise ConfigurationError(f"rician_k must be non-negative, got {self.rician_k}")
        if self.temporal_correlation is not None and not (
            -1.0 <= self.temporal_correlation <= 1.0
        ):
            raise ConfigurationError(
                f"temporal_correlation must lie in [-1, 1], got {self.temporal_correlation}"
            )
        if self.csi_error_variance < 0:
            raise ConfigurationError(
                f"csi_error_variance must be non-negative, got {self.csi_error_variance}"
            )
        if self.interference_power < 0:
            raise ConfigurationError(
                f"interference_power must be non-negative, got {self.interference_power}"
            )

    @classmethod
    def from_mobility(
        cls,
        velocity_mps: float,
        carrier_frequency_ghz: float = 3.5,
        block_period_us: float = 71.4,
        **kwargs,
    ) -> "ChannelImpairments":
        """Impairments whose temporal correlation follows user mobility.

        Translates (velocity, carrier, block period) into the Jakes AR(1)
        coefficient; other impairment fields pass through ``kwargs``.
        """
        return cls(
            temporal_correlation=jakes_correlation(
                velocity_mps, carrier_frequency_ghz, block_period_us
            ),
            **kwargs,
        )

    @property
    def is_identity(self) -> bool:
        """Whether this configuration changes nothing about the ideal channel.

        The identity (the default construction) applies no colouring, no
        LoS component, independent per-block draws, perfect CSI and zero
        interference — code paths guarded on it consume exactly the draws
        of the unimpaired library, so results reproduce bitwise.
        """
        return (
            self.rx_correlation == 0.0
            and self.tx_correlation == 0.0
            and self.rician_k is None
            and not self.temporal_correlation
            and self.csi_error_variance == 0.0
            and self.interference_power == 0.0
        )

    @property
    def has_spatial_structure(self) -> bool:
        """Whether sampling must colour draws (correlation or LoS present)."""
        has_correlation = self.rx_correlation != 0.0 or self.tx_correlation != 0.0
        return has_correlation or self.rician_k is not None

    @staticmethod
    def neighbour_load_scale(
        own_cell: int,
        cell_load_factors: Sequence[float],
        neighbours: Optional[Sequence[int]] = None,
    ) -> float:
        """Mean load factor of the cells interfering with ``own_cell``.

        The single source of the inter-cell coupling rule: interference
        comes from *other* cells' transmissions, so their mean load scales
        the nominal power.  Without ``neighbours`` every other cell
        interferes (the legacy fully coupled layout; a single-cell layout
        has no interferers and yields 0).  With a topology's neighbour set,
        only the adjacent cells couple — distant cells in a city-scale
        layout do not raise this cell's noise floor.  The serving layer
        applies the same rule to scenario intensities at each arrival
        instant.
        """
        factors = tuple(cell_load_factors)
        if not 0 <= own_cell < len(factors):
            raise ConfigurationError(f"own_cell {own_cell} outside {len(factors)} cells")
        if neighbours is None:
            others = [factor for cell, factor in enumerate(factors) if cell != own_cell]
        else:
            others = []
            for cell in neighbours:
                if not 0 <= cell < len(factors):
                    raise ConfigurationError(
                        f"neighbour {cell} outside {len(factors)} cells"
                    )
                if cell == own_cell:
                    raise ConfigurationError(
                        f"own_cell {own_cell} listed among its neighbours"
                    )
                others.append(factors[cell])
        if not others:
            return 0.0
        return float(np.mean(others))

    def interference_for_load(
        self,
        own_cell: int,
        cell_load_factors: Sequence[float],
        neighbours: Optional[Sequence[int]] = None,
    ) -> float:
        """Interference power seen by ``own_cell`` under per-cell load."""
        return self.interference_power * self.neighbour_load_scale(
            own_cell, cell_load_factors, neighbours
        )


# --------------------------------------------------------------------- #
# Channel models under impairments
# --------------------------------------------------------------------- #


class FadingChannel(ChannelModel):
    """Spatially structured fading: Kronecker correlation plus Rician LoS.

    Draws an i.i.d. realisation from ``base_model`` (Rayleigh scattering by
    default) and shapes it: receive/transmit colouring by the exponential
    correlation roots, then Rician mixing with the steering-vector LoS
    matrix.  With identity impairments the shaping is skipped entirely, so
    samples are bitwise-identical to the base model's.
    """

    def __init__(
        self,
        impairments: ChannelImpairments,
        base_model: Optional[ChannelModel] = None,
    ) -> None:
        if not isinstance(impairments, ChannelImpairments):
            raise ConfigurationError(
                f"impairments must be a ChannelImpairments, got {type(impairments).__name__}"
            )
        self.impairments = impairments
        self.base_model = base_model if base_model is not None else RayleighFadingChannel()

    def sample(
        self,
        receive_antennas: int,
        transmit_antennas: int,
        rng: RandomState = None,
    ) -> np.ndarray:
        draw = self.base_model.sample(receive_antennas, transmit_antennas, rng)
        return self.shape(draw)

    def shape(self, scattering: np.ndarray) -> np.ndarray:
        """Impose the spatial structure on an i.i.d. scattering draw."""
        impairments = self.impairments
        shaped = np.asarray(scattering, dtype=complex)
        receive_antennas, transmit_antennas = shaped.shape
        if impairments.rx_correlation:
            shaped = correlation_root(receive_antennas, impairments.rx_correlation) @ shaped
        if impairments.tx_correlation:
            shaped = shaped @ correlation_root(transmit_antennas, impairments.tx_correlation).T
        if impairments.rician_k is not None:
            k = impairments.rician_k
            los = los_matrix(
                receive_antennas,
                transmit_antennas,
                impairments.los_aoa_deg,
                impairments.los_aod_deg,
            )
            shaped = math.sqrt(k / (k + 1.0)) * los + math.sqrt(1.0 / (k + 1.0)) * shaped
        return shaped


class FadingProcess:
    """A temporally correlated sequence of channel realisations.

    Successive blocks evolve by the first-order autoregression

        ``W_t = a * W_{t-1} + sqrt(1 - a^2) * V_t``

    in the i.i.d. scattering domain, with ``a`` the Jakes coefficient
    (:attr:`ChannelImpairments.temporal_correlation`); each block's channel
    is the spatially shaped state :meth:`FadingChannel.shape` ``(W_t)``, so
    the LoS component stays static while the scattered component decorrelates
    — physically, the building does not move, the users do.

    One fresh innovation is drawn per :meth:`advance` *regardless of* ``a``
    (at ``a = 1`` it is weighted by zero), so every block consumes the same
    randomness whatever the Doppler: sweeping velocity in an experiment
    never shifts the downstream payload/noise draws of a block.  With
    ``a = 0`` (or ``None``) each block is exactly a fresh base-model draw,
    bitwise-identical to sampling the unimpaired model per block.
    """

    def __init__(
        self,
        receive_antennas: int,
        transmit_antennas: int,
        impairments: Optional[ChannelImpairments] = None,
        base_model: Optional[ChannelModel] = None,
    ) -> None:
        require_positive(receive_antennas, "receive_antennas")
        require_positive(transmit_antennas, "transmit_antennas")
        self.receive_antennas = int(receive_antennas)
        self.transmit_antennas = int(transmit_antennas)
        self.impairments = impairments if impairments is not None else ChannelImpairments()
        self._channel = FadingChannel(self.impairments, base_model)
        self._state: Optional[np.ndarray] = None

    @property
    def temporal_coefficient(self) -> float:
        """The AR(1) coefficient ``a`` (0 when temporal fading is disabled)."""
        return self.impairments.temporal_correlation or 0.0

    def reset(self) -> None:
        """Forget the fading state; the next block starts a fresh coherence run."""
        self._state = None

    def advance(self, rng: RandomState = None) -> np.ndarray:
        """Evolve one block and return its (spatially shaped) channel matrix."""
        generator = ensure_rng(rng)
        innovation = self._channel.base_model.sample(
            self.receive_antennas, self.transmit_antennas, generator
        )
        coefficient = self.temporal_coefficient
        if self._state is None or coefficient == 0.0:
            self._state = innovation
        else:
            self._state = (
                coefficient * self._state
                + math.sqrt(1.0 - coefficient * coefficient) * innovation
            )
        if self.impairments.has_spatial_structure:
            return self._channel.shape(self._state)
        return self._state
