"""Gray-coded digital modulation schemes.

The paper evaluates MIMO detection for BPSK, QPSK, 16-QAM and 64-QAM.  This
module provides those constellations with a Gray bit-to-symbol mapping (used
by the wireless link simulation, BER accounting, and the soft-information
constraint study of paper Figure 4) together with the *natural* per-dimension
amplitude mapping used by the QuAMax QUBO transform.

A :class:`Modulation` instance is immutable and cheap; :func:`get_modulation`
returns a shared instance per scheme name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ModulationError

__all__ = [
    "Modulation",
    "get_modulation",
    "available_modulations",
    "gray_code",
    "gray_decode",
    "bits_to_int",
    "int_to_bits",
]

#: Canonical modulation names recognised by :func:`get_modulation`.
_CANONICAL_NAMES = {
    "bpsk": "BPSK",
    "qpsk": "QPSK",
    "4qam": "QPSK",
    "4-qam": "QPSK",
    "16qam": "16-QAM",
    "16-qam": "16-QAM",
    "64qam": "64-QAM",
    "64-qam": "64-QAM",
}

#: Bits per complex symbol for each canonical scheme.
_BITS_PER_SYMBOL = {"BPSK": 1, "QPSK": 2, "16-QAM": 4, "64-QAM": 6}


def gray_code(value: int) -> int:
    """Return the Gray code of a non-negative integer."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Invert :func:`gray_code`."""
    if code < 0:
        raise ValueError(f"code must be non-negative, got {code}")
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


def bits_to_int(bits: Sequence[int]) -> int:
    """Interpret a bit sequence (MSB first) as an unsigned integer."""
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit!r}")
        value = (value << 1) | int(bit)
    return value


def int_to_bits(value: int, width: int) -> Tuple[int, ...]:
    """Expand an unsigned integer into ``width`` bits, MSB first."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return tuple((value >> shift) & 1 for shift in reversed(range(width)))


def _pam_levels(bits_per_dimension: int) -> np.ndarray:
    """Amplitude levels of a Gray-coded PAM with the given bit width.

    Levels are the odd integers centred on zero, e.g. ``[-3, -1, 1, 3]`` for
    two bits.  Index ``i`` of the returned array is the level whose *Gray*
    label is ``i``.
    """
    count = 1 << bits_per_dimension
    natural_levels = np.arange(count) * 2 - (count - 1)
    levels = np.empty(count, dtype=float)
    for natural_index, amplitude in enumerate(natural_levels):
        levels[gray_code(natural_index)] = amplitude
    return levels


@dataclass(frozen=True)
class Modulation:
    """An immutable Gray-coded modulation scheme.

    Attributes
    ----------
    name:
        Canonical scheme name (``"BPSK"``, ``"QPSK"``, ``"16-QAM"``, ``"64-QAM"``).
    bits_per_symbol:
        Number of bits carried by one complex constellation symbol.
    normalized:
        If true, the constellation is scaled to unit average symbol energy
        (the paper's "unit gain signal"); otherwise the raw odd-integer grid
        is used.
    """

    name: str
    bits_per_symbol: int
    normalized: bool = True
    _points: np.ndarray = field(repr=False, compare=False, default=None)
    _labels: Dict[Tuple[int, ...], int] = field(repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        points, labels = _build_constellation(self.name, self.bits_per_symbol, self.normalized)
        object.__setattr__(self, "_points", points)
        object.__setattr__(self, "_labels", labels)

    # ------------------------------------------------------------------ #
    # Basic constellation geometry
    # ------------------------------------------------------------------ #

    @property
    def order(self) -> int:
        """Constellation size ``M = 2**bits_per_symbol``."""
        return 1 << self.bits_per_symbol

    @property
    def points(self) -> np.ndarray:
        """All constellation points, indexed by symbol index (bit label value)."""
        return self._points.copy()

    @property
    def bits_per_dimension(self) -> int:
        """Bits mapped onto each of the I and Q dimensions (0 for BPSK's Q)."""
        if self.name == "BPSK":
            return 1
        return self.bits_per_symbol // 2

    @property
    def scale(self) -> float:
        """Multiplicative factor applied to the integer grid for normalisation."""
        if not self.normalized:
            return 1.0
        return float(1.0 / np.sqrt(self._average_grid_energy()))

    def _average_grid_energy(self) -> float:
        raw, _ = _build_constellation(self.name, self.bits_per_symbol, normalized=False)
        return float(np.mean(np.abs(raw) ** 2))

    @property
    def amplitude_levels(self) -> np.ndarray:
        """Per-dimension amplitude levels (scaled), sorted ascending."""
        if self.name == "BPSK":
            return np.array([-1.0, 1.0]) * self.scale
        count = 1 << self.bits_per_dimension
        return (np.arange(count) * 2.0 - (count - 1)) * self.scale

    # ------------------------------------------------------------------ #
    # Bit <-> symbol mapping
    # ------------------------------------------------------------------ #

    def modulate_bits(self, bits: Sequence[int]) -> np.ndarray:
        """Map a bit sequence to complex symbols (Gray mapping).

        The bit sequence length must be a multiple of :attr:`bits_per_symbol`.
        """
        bits = np.asarray(bits, dtype=int).ravel()
        if bits.size % self.bits_per_symbol:
            raise ModulationError(
                f"bit count {bits.size} is not a multiple of "
                f"bits_per_symbol={self.bits_per_symbol} for {self.name}"
            )
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ModulationError("bits must be 0 or 1")
        groups = bits.reshape(-1, self.bits_per_symbol)
        indices = np.array([bits_to_int(group) for group in groups], dtype=int)
        return self._points[indices]

    def modulate_indices(self, indices: Sequence[int]) -> np.ndarray:
        """Map symbol indices (bit-label integers) to constellation points."""
        indices = np.asarray(indices, dtype=int).ravel()
        if indices.size and (indices.min() < 0 or indices.max() >= self.order):
            raise ModulationError(
                f"symbol indices must lie in [0, {self.order - 1}] for {self.name}"
            )
        return self._points[indices]

    def demodulate_hard(self, symbols: Sequence[complex]) -> np.ndarray:
        """Nearest-point hard demodulation; returns the bit sequence."""
        symbols = np.asarray(symbols, dtype=complex).ravel()
        bits: List[int] = []
        for symbol in symbols:
            index = int(np.argmin(np.abs(self._points - symbol)))
            bits.extend(int_to_bits(index, self.bits_per_symbol))
        return np.asarray(bits, dtype=int)

    def symbol_index(self, symbol: complex, tolerance: float = 1e-9) -> int:
        """Return the index of an exact constellation point.

        Raises :class:`ModulationError` if ``symbol`` is not (within
        ``tolerance``) a constellation point — use :meth:`nearest_index` for
        noisy inputs.
        """
        distances = np.abs(self._points - symbol)
        index = int(np.argmin(distances))
        if distances[index] > tolerance:
            raise ModulationError(
                f"{symbol!r} is not a {self.name} constellation point"
            )
        return index

    def nearest_index(self, symbol: complex) -> int:
        """Index of the constellation point closest to ``symbol``."""
        return int(np.argmin(np.abs(self._points - symbol)))

    def bits_for_index(self, index: int) -> Tuple[int, ...]:
        """Bit label (MSB first) of a symbol index."""
        if not 0 <= index < self.order:
            raise ModulationError(
                f"symbol index {index} out of range for {self.name}"
            )
        return int_to_bits(index, self.bits_per_symbol)

    def random_symbols(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` uniformly random constellation symbols."""
        indices = rng.integers(0, self.order, size=count)
        return self._points[indices]

    def random_bits(self, symbol_count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw a random bit sequence for ``symbol_count`` symbols."""
        return rng.integers(0, 2, size=symbol_count * self.bits_per_symbol)

    def average_energy(self) -> float:
        """Mean squared magnitude of the constellation."""
        return float(np.mean(np.abs(self._points) ** 2))

    def minimum_distance(self) -> float:
        """Minimum Euclidean distance between distinct constellation points."""
        points = self._points
        distances = np.abs(points[:, None] - points[None, :])
        distances[np.diag_indices_from(distances)] = np.inf
        return float(distances.min())

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _build_constellation(
    name: str, bits_per_symbol: int, normalized: bool
) -> Tuple[np.ndarray, Dict[Tuple[int, ...], int]]:
    """Construct constellation points indexed by bit-label integer."""
    order = 1 << bits_per_symbol
    points = np.empty(order, dtype=complex)

    if name == "BPSK":
        points[0] = -1.0
        points[1] = 1.0
    else:
        bits_per_dim = bits_per_symbol // 2
        levels = _pam_levels(bits_per_dim)
        for label in range(order):
            in_phase_label = label >> bits_per_dim
            quadrature_label = label & ((1 << bits_per_dim) - 1)
            points[label] = levels[in_phase_label] + 1j * levels[quadrature_label]

    if normalized:
        energy = float(np.mean(np.abs(points) ** 2))
        points = points / np.sqrt(energy)

    labels = {int_to_bits(index, bits_per_symbol): index for index in range(order)}
    return points, labels


@lru_cache(maxsize=None)
def _cached_modulation(name: str, normalized: bool) -> Modulation:
    return Modulation(name=name, bits_per_symbol=_BITS_PER_SYMBOL[name], normalized=normalized)


def get_modulation(name: str, normalized: bool = True) -> Modulation:
    """Return the shared :class:`Modulation` instance for a scheme name.

    Accepts case-insensitive aliases such as ``"16qam"`` and ``"16-QAM"``.
    """
    key = name.strip().lower().replace(" ", "")
    if key not in _CANONICAL_NAMES:
        raise ModulationError(
            f"unknown modulation {name!r}; available: {sorted(set(_CANONICAL_NAMES.values()))}"
        )
    return _cached_modulation(_CANONICAL_NAMES[key], normalized)


def available_modulations() -> List[str]:
    """Names of the modulations studied in the paper, lowest order first."""
    return ["BPSK", "QPSK", "16-QAM", "64-QAM"]
