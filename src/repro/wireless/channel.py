"""MIMO channel models and additive noise.

The paper's experimental protocol (Sec. 4.2) synthesises detection instances
with a *unit-gain wireless channel with random phase* and no AWGN.  The
library also provides i.i.d. Rayleigh fading (the standard model used by the
QuAMax baseline and by the classical detectors' literature) and an identity
channel for debugging, plus AWGN generation for the extension benchmarks that
sweep SNR.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import DimensionError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive

__all__ = [
    "ChannelModel",
    "UnitGainRandomPhaseChannel",
    "RayleighFadingChannel",
    "IdentityChannel",
    "awgn",
    "noise_variance_for_snr",
    "effective_noise_variance",
    "apply_channel",
]


class ChannelModel(abc.ABC):
    """Abstract generator of complex channel matrices H (receivers x users)."""

    @abc.abstractmethod
    def sample(
        self,
        receive_antennas: int,
        transmit_antennas: int,
        rng: RandomState = None,
    ) -> np.ndarray:
        """Draw one channel realisation of shape (receive, transmit)."""

    def sample_many(
        self,
        count: int,
        receive_antennas: int,
        transmit_antennas: int,
        rng: RandomState = None,
    ) -> np.ndarray:
        """Draw ``count`` independent realisations, stacked on axis 0."""
        generator = ensure_rng(rng)
        return np.stack(
            [self.sample(receive_antennas, transmit_antennas, generator) for _ in range(count)]
        )


class UnitGainRandomPhaseChannel(ChannelModel):
    """The paper's channel: every entry has unit magnitude and uniform phase.

    ``H[r, t] = exp(j * theta)`` with ``theta ~ Uniform[0, 2*pi)``.  This keeps
    the per-link gain deterministic so the difficulty of the resulting QUBO is
    governed by phase interference alone, matching Sec. 4.2.
    """

    def sample(
        self,
        receive_antennas: int,
        transmit_antennas: int,
        rng: RandomState = None,
    ) -> np.ndarray:
        require_positive(receive_antennas, "receive_antennas")
        require_positive(transmit_antennas, "transmit_antennas")
        generator = ensure_rng(rng)
        phases = generator.uniform(0.0, 2.0 * np.pi, size=(receive_antennas, transmit_antennas))
        return np.exp(1j * phases)


class RayleighFadingChannel(ChannelModel):
    """I.i.d. circularly-symmetric complex Gaussian fading.

    Entries are CN(0, ``average_power``); the default unit average power is
    the conventional normalisation in the MIMO detection literature.
    """

    def __init__(self, average_power: float = 1.0) -> None:
        require_positive(average_power, "average_power")
        self.average_power = float(average_power)

    def sample(
        self,
        receive_antennas: int,
        transmit_antennas: int,
        rng: RandomState = None,
    ) -> np.ndarray:
        require_positive(receive_antennas, "receive_antennas")
        require_positive(transmit_antennas, "transmit_antennas")
        generator = ensure_rng(rng)
        scale = np.sqrt(self.average_power / 2.0)
        shape = (receive_antennas, transmit_antennas)
        return scale * (generator.standard_normal(shape) + 1j * generator.standard_normal(shape))


class IdentityChannel(ChannelModel):
    """A noiseless identity channel, useful for unit tests and debugging."""

    def sample(
        self,
        receive_antennas: int,
        transmit_antennas: int,
        rng: RandomState = None,
    ) -> np.ndarray:
        require_positive(receive_antennas, "receive_antennas")
        require_positive(transmit_antennas, "transmit_antennas")
        matrix = np.zeros((receive_antennas, transmit_antennas), dtype=complex)
        for index in range(min(receive_antennas, transmit_antennas)):
            matrix[index, index] = 1.0
        return matrix


def noise_variance_for_snr(
    snr_db: float, signal_power: float = 1.0, transmit_antennas: int = 1
) -> float:
    """Per-receive-antenna complex noise variance achieving a target SNR.

    The SNR convention is total received signal power over noise power per
    receive antenna, i.e. ``SNR = Nt * Es / N0`` for unit-gain channels.
    """
    require_positive(signal_power, "signal_power")
    require_positive(transmit_antennas, "transmit_antennas")
    snr_linear = 10.0 ** (snr_db / 10.0)
    return float(transmit_antennas * signal_power / snr_linear)


def awgn(
    shape,
    noise_variance: float,
    rng: RandomState = None,
) -> np.ndarray:
    """Draw circularly-symmetric complex Gaussian noise with given variance.

    ``noise_variance`` is the total complex variance (real and imaginary parts
    each carry half of it).  A variance of zero returns exact zeros, matching
    the paper's noiseless protocol.
    """
    if noise_variance < 0:
        raise ValueError(f"noise_variance must be non-negative, got {noise_variance}")
    if noise_variance == 0:
        return np.zeros(shape, dtype=complex)
    generator = ensure_rng(rng)
    scale = np.sqrt(noise_variance / 2.0)
    return scale * (generator.standard_normal(shape) + 1j * generator.standard_normal(shape))


def effective_noise_variance(
    noise_variance: float, interference_power: float = 0.0
) -> float:
    """Total Gaussian disturbance variance per receive antenna.

    Inter-cell interference is modelled as an additional circularly-symmetric
    Gaussian term (the standard approximation of many superposed interfering
    streams), so it simply adds to the thermal-noise variance.  Detectors
    that regularise on the noise level (MMSE) should regularise on this
    total.
    """
    if noise_variance < 0:
        raise ValueError(f"noise_variance must be non-negative, got {noise_variance}")
    if interference_power < 0:
        raise ValueError(
            f"interference_power must be non-negative, got {interference_power}"
        )
    return float(noise_variance + interference_power)


def apply_channel(
    channel_matrix: np.ndarray,
    transmitted: np.ndarray,
    noise_variance: float = 0.0,
    rng: RandomState = None,
    interference_power: float = 0.0,
) -> np.ndarray:
    """Compute the received vector ``y = H x + n (+ i)``.

    Parameters
    ----------
    channel_matrix:
        Complex channel matrix of shape (receive, transmit).
    transmitted:
        Complex symbol vector of length ``transmit``.
    noise_variance:
        Total complex AWGN variance per receive antenna (0 disables noise).
    interference_power:
        Inter-cell interference power per receive antenna, folded into the
        same Gaussian draw as the thermal noise (their sum is again
        Gaussian), so zero interference leaves the random stream untouched.
    """
    channel_matrix = np.asarray(channel_matrix, dtype=complex)
    transmitted = np.asarray(transmitted, dtype=complex).ravel()
    if channel_matrix.ndim != 2:
        raise DimensionError("channel_matrix must be 2-D")
    if channel_matrix.shape[1] != transmitted.size:
        raise DimensionError(
            f"channel has {channel_matrix.shape[1]} transmit antennas but "
            f"{transmitted.size} symbols were supplied"
        )
    total_variance = effective_noise_variance(noise_variance, interference_power)
    noise = awgn(channel_matrix.shape[0], total_variance, rng)
    return channel_matrix @ transmitted + noise
