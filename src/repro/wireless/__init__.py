"""Wireless PHY substrate: modulation, channels, and MIMO link simulation.

This package provides the wireless-networking substrate the paper's
evaluation depends on:

* :mod:`repro.wireless.modulation` — Gray-coded BPSK/QPSK/16-QAM/64-QAM
  constellations with bit/symbol mapping.
* :mod:`repro.wireless.channel` — the paper's unit-gain random-phase channel,
  a Rayleigh fading channel, and AWGN.
* :mod:`repro.wireless.fading` — the realistic-channel impairment engine:
  Kronecker spatial correlation, Rician LoS, Jakes-Doppler block fading,
  pilot-based imperfect CSI, and inter-cell interference.
* :mod:`repro.wireless.mimo` — spatial-multiplexing MIMO link simulation and
  exact maximum-likelihood detection for ground truth.
* :mod:`repro.wireless.metrics` — BER / SER / EVM link metrics.
* :mod:`repro.wireless.traffic` — successive channel-use traffic generation
  for the pipelining study (paper Figure 2).
"""

from repro.wireless.modulation import (
    Modulation,
    get_modulation,
    available_modulations,
    gray_code,
    gray_decode,
)
from repro.wireless.channel import (
    ChannelModel,
    UnitGainRandomPhaseChannel,
    RayleighFadingChannel,
    IdentityChannel,
    awgn,
    noise_variance_for_snr,
    effective_noise_variance,
)
from repro.wireless.fading import (
    ChannelImpairments,
    FadingChannel,
    FadingProcess,
    estimate_channel,
    exponential_correlation,
    jakes_correlation,
    pilot_csi_error_variance,
)
from repro.wireless.mimo import (
    MIMOConfig,
    MIMOInstance,
    MIMOTransmission,
    MIMODetectionResult,
    simulate_transmission,
    maximum_likelihood_detect,
)
from repro.wireless.metrics import bit_error_rate, symbol_error_rate, error_vector_magnitude
from repro.wireless.traffic import ChannelUse, TrafficGenerator

__all__ = [
    "Modulation",
    "get_modulation",
    "available_modulations",
    "gray_code",
    "gray_decode",
    "ChannelModel",
    "UnitGainRandomPhaseChannel",
    "RayleighFadingChannel",
    "IdentityChannel",
    "awgn",
    "noise_variance_for_snr",
    "effective_noise_variance",
    "ChannelImpairments",
    "FadingChannel",
    "FadingProcess",
    "estimate_channel",
    "exponential_correlation",
    "jakes_correlation",
    "pilot_csi_error_variance",
    "MIMOConfig",
    "MIMOInstance",
    "MIMOTransmission",
    "MIMODetectionResult",
    "simulate_transmission",
    "maximum_likelihood_detect",
    "bit_error_rate",
    "symbol_error_rate",
    "error_vector_magnitude",
    "ChannelUse",
    "TrafficGenerator",
]
