"""Structured logging for the library: one configuration entry point.

Replaces the ad-hoc ``print``/``warnings`` progress output scattered through
the experiment drivers with loggers that render ``event key=value ...``
lines.  Verbosity maps onto the CLI flags:

====================  =========  =============================
verbosity argument    CLI        effective level
====================  =========  =============================
``-1``                ``-q``     ERROR (only failures)
``0`` (default)       (none)     WARNING
``1``                 ``-v``     INFO (per-study progress)
``2`` or more         ``-vv``    DEBUG (per-shard / per-point)
====================  =========  =============================

Handlers attach to the ``"repro"`` root logger only; library imports never
configure logging on their own (no side effects at import time), so embedding
applications keep full control until :func:`configure_logging` is called.
"""

from __future__ import annotations

import logging
from typing import Any, IO, Optional

__all__ = ["configure_logging", "get_logger", "StructuredLogger", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

_LEVELS = {
    -1: logging.ERROR,
    0: logging.WARNING,
    1: logging.INFO,
    2: logging.DEBUG,
}


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return f'"{text}"' if " " in text else text


class StructuredLogger:
    """A thin wrapper rendering ``event key=value ...`` log lines.

    Keeps stdlib ``logging`` underneath (level filtering, handler routing,
    ``caplog`` in tests) while giving call sites a structured surface:
    ``log.info("shard.done", key=shard.key, seconds=1.25)``.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @staticmethod
    def _render(event: str, fields: dict) -> str:
        if not fields:
            return event
        rendered = " ".join(f"{key}={_format_value(value)}" for key, value in fields.items())
        return f"{event} {rendered}"

    def debug(self, event: str, **fields: Any) -> None:
        if self._logger.isEnabledFor(logging.DEBUG):
            self._logger.debug(self._render(event, fields))

    def info(self, event: str, **fields: Any) -> None:
        if self._logger.isEnabledFor(logging.INFO):
            self._logger.info(self._render(event, fields))

    def warning(self, event: str, **fields: Any) -> None:
        if self._logger.isEnabledFor(logging.WARNING):
            self._logger.warning(self._render(event, fields))

    def error(self, event: str, **fields: Any) -> None:
        if self._logger.isEnabledFor(logging.ERROR):
            self._logger.error(self._render(event, fields))

    @property
    def raw(self) -> logging.Logger:
        """The underlying stdlib logger (for tests and handler surgery)."""
        return self._logger


def get_logger(name: str) -> StructuredLogger:
    """A structured logger under the ``repro`` hierarchy.

    ``name`` may be a module ``__name__`` (already rooted at ``repro``) or a
    bare suffix like ``"cache"``.
    """
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return StructuredLogger(logging.getLogger(name))


def configure_logging(verbosity: int = 0, stream: Optional[IO[str]] = None) -> None:
    """Install (or reconfigure) the library's log handler.

    Idempotent: repeated calls replace the handler installed by earlier
    calls rather than stacking duplicates.  Only the ``repro`` root logger
    is touched.
    """
    level = _LEVELS.get(max(-1, min(2, int(verbosity))), logging.WARNING)
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_telemetry_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler._repro_telemetry_handler = True
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
    # Without this, records would also bubble to the (possibly pytest-owned)
    # global root logger and print twice.
    root.propagate = False
