"""The in-process metrics registry: counters, gauges and histograms.

The registry is the O&M-counter surface of the library: instrumented call
sites increment named metrics (optionally carrying a small set of string
labels, Prometheus-style) and exporters snapshot the whole registry at the
end of a run.  Everything here is plain python state — no background
threads, no I/O, and, critically, **no randomness**: recording a metric can
never perturb an experiment's RNG streams or float arithmetic, which is what
keeps telemetry bitwise-invariant.

Metric identity is ``(name, sorted label items)``.  A name is registered
with exactly one metric type; asking for the same name as a different type
raises :class:`~repro.exceptions.ConfigurationError` — silently aliasing a
counter and a gauge would corrupt the exported snapshot.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_US",
]

#: Default histogram bucket upper edges for microsecond latencies (a decade
#: ladder from 100 us to 100 ms; observations above fall into +Inf).
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = (
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the running total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-bucket histogram with Prometheus ``le`` (≤ edge) semantics.

    ``edges`` are the finite bucket upper bounds, strictly increasing; an
    implicit +Inf bucket catches everything above the last edge.  An
    observation equal to an edge lands in that edge's bucket (``le`` means
    *less than or equal*), matching the Prometheus text-format contract.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "edges", "bucket_counts", "sum", "count")

    def __init__(self, name: str, labels: LabelItems, edges: Sequence[float]) -> None:
        edges = tuple(float(edge) for edge in edges)
        if not edges:
            raise ConfigurationError(f"histogram {name} needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigurationError(
                f"histogram {name} bucket edges must be strictly increasing, got {edges}"
            )
        self.name = name
        self.labels = labels
        self.edges = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative counts, one per edge plus +Inf."""
        counts, total = [], 0
        for bucket in self.bucket_counts:
            total += bucket
            counts.append(total)
        return counts


class MetricsRegistry:
    """Get-or-create store of named metrics.

    ``counter`` / ``gauge`` / ``histogram`` return the live metric for a
    ``(name, labels)`` pair, creating it on first use — instrumented call
    sites never need to pre-declare anything.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}

    @staticmethod
    def _label_items(labels: Dict[str, str]) -> LabelItems:
        return tuple(sorted((str(key), str(value)) for key, value in labels.items()))

    def _get(self, kind: str, name: str, labels: Dict[str, str], factory):
        registered = self._kinds.get(name)
        if registered is not None and registered != kind:
            raise ConfigurationError(
                f"metric {name!r} is already registered as a {registered}, "
                f"cannot re-register as a {kind}"
            )
        key = (name, self._label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, key[1])
            self._metrics[key] = metric
            self._kinds[name] = kind
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        edges = DEFAULT_LATENCY_BUCKETS_US if edges is None else edges
        return self._get(
            "histogram", name, labels, lambda n, items: Histogram(n, items, edges)
        )

    def metrics(self) -> Iterator[object]:
        """Every registered metric, ordered by (name, labels) for stable export."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-data view of the registry (used by tests and reports)."""
        view: Dict[str, Dict[str, object]] = {}
        for metric in self.metrics():
            label_text = ",".join(f"{key}={value}" for key, value in metric.labels)
            entry = view.setdefault(metric.name, {"kind": metric.kind, "samples": {}})
            if isinstance(metric, Histogram):
                entry["samples"][label_text] = {
                    "sum": metric.sum,
                    "count": metric.count,
                    "buckets": dict(
                        zip([str(e) for e in metric.edges] + ["+Inf"],
                            metric.cumulative_counts())
                    ),
                }
            else:
                entry["samples"][label_text] = metric.value
        return view
