"""In-process telemetry: metrics registry, sim-time tracing, exporters.

The subsystem is dependency-free (stdlib only) and built around one
invariant: **instrumentation can never change results**.  Recording a span
or bumping a counter touches no RNG and no experiment float arithmetic, so
every golden-regression and kernel-equivalence test passes bitwise-identically
with telemetry enabled or disabled.

Disabled is the default and costs almost nothing: there is no session object
at all (``active()`` returns ``None``) and every instrumented call site is
guarded::

    tel = telemetry.active()
    if tel is not None:
        tel.registry.counter("repro_jobs_total").inc()

Enable for a run with :func:`enable` / :func:`disable`, or scoped (the form
tests use) with the :func:`session` context manager::

    with telemetry.session() as tel:
        report = simulator.run(jobs)
        assert tel.tracer.spans_named("serving.job")

The CLI wires this up via ``--telemetry[=DIR]``, exporting the trace
(JSONL), a Prometheus metrics snapshot, and a human-readable summary at
process exit; see ``docs/telemetry.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.telemetry.registry import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS_US,
)
from repro.telemetry.tracing import CLOCK_SIM, CLOCK_WALL, Span, Tracer  # noqa: F401

__all__ = [
    "TelemetrySession",
    "active",
    "enable",
    "disable",
    "session",
    "emit_progress",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "CLOCK_SIM",
    "CLOCK_WALL",
    "DEFAULT_LATENCY_BUCKETS_US",
]


class TelemetrySession:
    """One enabled telemetry scope: a registry, a tracer, and run numbering.

    ``next_run_index()`` hands out a deterministic, monotonically increasing
    index to each instrumented simulator/driver run so trace consumers can
    tell runs apart without any timestamp or RNG involvement.
    """

    __slots__ = ("registry", "tracer", "_run_counter")

    def __init__(self, max_records: int = 200_000) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(max_records=max_records)
        self._run_counter = 0

    def next_run_index(self) -> int:
        index = self._run_counter
        self._run_counter += 1
        return index


#: The process-wide session, or ``None`` when telemetry is disabled.
_session: Optional[TelemetrySession] = None


def active() -> Optional[TelemetrySession]:
    """The enabled session, or ``None`` — THE guard every call site checks.

    Kept deliberately trivial (one global read) so that disabled-mode
    overhead is a single attribute lookup and ``is None`` test per
    instrumented operation.
    """
    return _session


def enable(max_records: int = 200_000) -> TelemetrySession:
    """Turn telemetry on process-wide; returns the (possibly existing) session.

    Idempotent: enabling while already enabled keeps the current session and
    its accumulated data.
    """
    global _session
    if _session is None:
        _session = TelemetrySession(max_records=max_records)
    return _session


def disable() -> Optional[TelemetrySession]:
    """Turn telemetry off; returns the final session (for late export), if any."""
    global _session
    final, _session = _session, None
    return final


def emit_progress(experiment: str, point: object, **attrs: object) -> None:
    """Record one ``experiment.point`` progress event (no-op when disabled).

    The one-line guard every experiment driver uses to mark a completed
    sweep point without repeating the ``active()`` dance.
    """
    tel = active()
    if tel is not None:
        tel.tracer.event("experiment.point", experiment=experiment, point=str(point), **attrs)


@contextmanager
def session(max_records: int = 200_000) -> Iterator[TelemetrySession]:
    """Scoped enablement: telemetry is on inside the ``with``, restored after.

    If a session is already active it is reused (and left active on exit),
    so nesting composes; otherwise a fresh session is created and torn down.
    """
    global _session
    created = _session is None
    tel = enable(max_records=max_records)
    try:
        yield tel
    finally:
        if created:
            _session = None
