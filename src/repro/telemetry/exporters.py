"""Trace and metrics exporters: JSONL traces, Prometheus text, run summaries.

Three output formats, all dependency-free:

* **JSONL trace** — one JSON object per line; the first line is a ``meta``
  record carrying the schema version.  :func:`validate_trace_record` is the
  schema contract (CI validates every smoke-run trace against it).
* **Prometheus text format** — a point-in-time snapshot of the metrics
  registry (``# HELP`` / ``# TYPE`` + samples), parseable back with
  :func:`parse_prometheus_text` for round-trip tests.
* **Run summary** — the human-readable per-stage latency breakdown and
  top-N slowest-span table rendered by ``scripts/telemetry_report.py``.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.telemetry.registry import Histogram, MetricsRegistry
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "span_to_record",
    "write_trace_jsonl",
    "iter_trace_records",
    "validate_trace_record",
    "validate_trace_file",
    "prometheus_text",
    "parse_prometheus_text",
    "summarize_spans",
    "format_run_summary",
]

#: Bump when the JSONL trace layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

_RECORD_KINDS = ("meta", "span", "event")
_CLOCKS = ("sim", "wall")


# --------------------------------------------------------------------- #
# JSONL trace
# --------------------------------------------------------------------- #


def _jsonable_attr(value: Any) -> Any:
    """Reduce a span attribute to a JSON-serialisable value (lossy but safe)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable_attr(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable_attr(item) for key, item in value.items()}
    return repr(value)


def span_to_record(span: Span) -> Dict[str, Any]:
    """One trace record as the plain dict the JSONL schema serialises."""
    return {
        "kind": span.kind,
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "clock": span.clock,
        "start_us": span.start_us,
        "end_us": span.end_us,
        "duration_us": span.duration_us,
        "attrs": {str(key): _jsonable_attr(value) for key, value in span.attrs.items()},
    }


def write_trace_jsonl(tracer: Tracer, path: Union[str, os.PathLike]) -> int:
    """Dump the tracer's buffer as JSONL; returns the number of records."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "kind": "meta",
        "schema_version": TRACE_SCHEMA_VERSION,
        "time_unit": "us",
        "records": len(tracer.records),
        "dropped": tracer.dropped,
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(meta, sort_keys=True) + "\n")
        for span in tracer.records:
            handle.write(json.dumps(span_to_record(span), sort_keys=True) + "\n")
    return len(tracer.records)


def iter_trace_records(path: Union[str, os.PathLike]) -> Iterator[Dict[str, Any]]:
    """Yield every record (including the leading ``meta`` line) of a trace."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def validate_trace_record(record: Any) -> None:
    """Assert one parsed trace record conforms to the schema.

    Raises ``ValueError`` with a human-readable reason on any violation —
    this function *is* the trace schema, used by tests and the CI smoke
    validation step.
    """
    if not isinstance(record, dict):
        raise ValueError(f"record must be an object, got {type(record).__name__}")
    kind = record.get("kind")
    if kind not in _RECORD_KINDS:
        raise ValueError(f"record kind must be one of {_RECORD_KINDS}, got {kind!r}")
    if kind == "meta":
        if record.get("schema_version") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema_version {record.get('schema_version')!r} "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        return
    for key, kinds in (
        ("id", (int,)),
        ("name", (str,)),
        ("start_us", (int, float)),
        ("end_us", (int, float)),
        ("duration_us", (int, float)),
        ("attrs", (dict,)),
    ):
        if not isinstance(record.get(key), kinds) or isinstance(record.get(key), bool):
            raise ValueError(f"{kind} record field {key!r} missing or mistyped")
    if record.get("parent") is not None and not isinstance(record["parent"], int):
        raise ValueError("span parent must be an integer id or null")
    if record.get("clock") not in _CLOCKS:
        raise ValueError(f"span clock must be one of {_CLOCKS}, got {record.get('clock')!r}")
    for key in ("start_us", "end_us", "duration_us"):
        if not math.isfinite(record[key]):
            raise ValueError(f"span field {key!r} must be finite")
    if record["end_us"] + 1e-9 < record["start_us"]:
        raise ValueError("span end_us precedes start_us")
    if kind == "event" and abs(record["duration_us"]) > 1e-9:
        raise ValueError("event records must have zero duration")


def validate_trace_file(path: Union[str, os.PathLike]) -> Dict[str, int]:
    """Validate a whole JSONL trace; returns record counts per kind."""
    counts = {kind: 0 for kind in _RECORD_KINDS}
    first = True
    for index, record in enumerate(iter_trace_records(path)):
        try:
            validate_trace_record(record)
            if first and record.get("kind") != "meta":
                raise ValueError("first trace line must be the meta record")
        except ValueError as error:
            raise ValueError(f"{path}: line {index + 1}: {error}") from None
        counts[record["kind"]] += 1
        first = False
    if counts["meta"] != 1:
        raise ValueError(f"{path}: expected exactly one meta record, got {counts['meta']}")
    return counts


# --------------------------------------------------------------------- #
# Prometheus text format
# --------------------------------------------------------------------- #


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sample_line(name: str, labels: Sequence[Tuple[str, str]], value: float) -> str:
    if labels:
        rendered = ",".join(f'{key}="{_escape_label(value_)}"' for key, value_ in labels)
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry as a Prometheus text-format (0.0.4) snapshot."""
    lines: List[str] = []
    seen_types = set()
    for metric in registry.metrics():
        if metric.name not in seen_types:
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            seen_types.add(metric.name)
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for edge, count in zip(list(metric.edges) + [math.inf], cumulative):
                labels = list(metric.labels) + [("le", _format_value(edge))]
                lines.append(_sample_line(f"{metric.name}_bucket", labels, count))
            lines.append(_sample_line(f"{metric.name}_sum", list(metric.labels), metric.sum))
            lines.append(
                _sample_line(f"{metric.name}_count", list(metric.labels), metric.count)
            )
        else:
            lines.append(_sample_line(metric.name, list(metric.labels), metric.value))
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Parse a text-format snapshot back into ``{name: {labels: value}}``.

    Supports exactly the subset :func:`prometheus_text` emits (enough for
    round-trip tests and the report script; not a general scraper).
    """
    samples: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        metric_part, _, value_part = line.rpartition(" ")
        value = math.inf if value_part == "+Inf" else float(value_part)
        if "{" in metric_part:
            name, _, label_part = metric_part.partition("{")
            label_part = label_part.rstrip("}")
            labels = []
            for item in _split_labels(label_part):
                key, _, raw = item.partition("=")
                labels.append((key, _unescape_label(raw[1:-1])))
            key = tuple(labels)
        else:
            name, key = metric_part, ()
        samples.setdefault(name, {})[key] = value
    return samples


def _unescape_label(raw: str) -> str:
    """Invert :func:`_escape_label`, consuming escapes left to right (a
    chained ``str.replace`` would mangle values ending in ``\\"``)."""
    characters: List[str] = []
    stream = iter(raw)
    for char in stream:
        if char == "\\":
            follower = next(stream, "")
            characters.append({"n": "\n", '"': '"', "\\": "\\"}.get(follower, "\\" + follower))
        else:
            characters.append(char)
    return "".join(characters)


def _split_labels(label_part: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    items, current, in_quotes, escaped = [], [], False, False
    for char in label_part:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        items.append("".join(current))
    return items


# --------------------------------------------------------------------- #
# Run summary
# --------------------------------------------------------------------- #


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank-style percentile on a pre-sorted list (no numpy needed)."""
    if not sorted_values:
        return 0.0
    rank = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[rank]


def summarize_spans(records: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Aggregate span records by name: count, total/mean/p50/p95/max duration.

    ``records`` are parsed JSONL trace records; ``meta`` lines and point
    events are skipped (events carry no duration to aggregate).
    """
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        grouped.setdefault(record["name"], []).append(record)
    summary: Dict[str, Dict[str, Any]] = {}
    for name, spans in grouped.items():
        durations = sorted(span["duration_us"] for span in spans)
        summary[name] = {
            "clock": spans[0]["clock"],
            "count": len(spans),
            "total_us": sum(durations),
            "mean_us": sum(durations) / len(durations),
            "p50_us": _percentile(durations, 0.50),
            "p95_us": _percentile(durations, 0.95),
            "max_us": durations[-1],
        }
    return summary


def format_run_summary(
    records: Sequence[Dict[str, Any]],
    metrics_text: Optional[str] = None,
    top: int = 10,
) -> str:
    """The human-readable run report: per-stage breakdown + slowest spans."""
    lines: List[str] = ["Telemetry run summary", ""]
    summary = summarize_spans(records)
    if summary:
        lines.append("Per-stage latency breakdown (spans grouped by name):")
        lines.append(
            f"{'stage':<24} {'clock':>5} {'count':>7} {'total':>12} "
            f"{'mean':>10} {'p50':>10} {'p95':>10} {'max':>10}  (us)"
        )
        for name in sorted(summary, key=lambda n: -summary[n]["total_us"]):
            row = summary[name]
            lines.append(
                f"{name:<24} {row['clock']:>5} {row['count']:>7d} "
                f"{row['total_us']:>12.1f} {row['mean_us']:>10.1f} "
                f"{row['p50_us']:>10.1f} {row['p95_us']:>10.1f} {row['max_us']:>10.1f}"
            )
    else:
        lines.append("No spans recorded.")

    spans = [record for record in records if record.get("kind") == "span"]
    if spans:
        lines.append("")
        lines.append(f"Top {min(top, len(spans))} slowest spans:")
        lines.append(f"{'duration (us)':>14}  {'clock':>5}  {'name':<24} attrs")
        for record in sorted(spans, key=lambda r: -r["duration_us"])[:top]:
            attrs = ", ".join(f"{k}={v}" for k, v in sorted(record["attrs"].items()))
            lines.append(
                f"{record['duration_us']:>14.1f}  {record['clock']:>5}  "
                f"{record['name']:<24} {attrs}"
            )

    events = [record for record in records if record.get("kind") == "event"]
    if events:
        counts: Dict[str, int] = {}
        for record in events:
            counts[record["name"]] = counts.get(record["name"], 0) + 1
        lines.append("")
        lines.append("Events: " + ", ".join(f"{k} x{v}" for k, v in sorted(counts.items())))

    if metrics_text:
        lines.append("")
        lines.append("Counters:")
        for name, label_samples in sorted(parse_prometheus_text(metrics_text).items()):
            if name.endswith(("_bucket", "_sum")):
                continue
            for labels, value in sorted(label_samples.items()):
                rendered = (
                    "{" + ",".join(f"{k}={v}" for k, v in labels) + "}" if labels else ""
                )
                lines.append(f"  {name}{rendered} = {_format_value(value)}")
    return "\n".join(lines) + "\n"
