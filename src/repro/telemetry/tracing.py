"""Sim-time-aware spans with parent/child nesting and a bounded buffer.

A *span* is one named interval with attributes; an *event* is a
zero-duration point record.  Both carry a ``clock`` tag that says which
timeline their timestamps live on:

``"sim"``
    Simulated microseconds — the discrete-event serving layer records job
    lifecycles (arrival → queue → solve → complete) on the simulation
    clock, so a trace reconstructs *modelled* latency exactly, independent
    of how fast the host machine ran the simulation.
``"wall"``
    Host microseconds from ``time.perf_counter`` — compute work (kernel
    calls, experiment shards) records real elapsed time, the basis of
    "where did the wall time go" breakdowns.

Sim-time spans are recorded after the fact via :meth:`Tracer.record_span`
(the simulator knows a job's whole timeline once it completes); wall-time
spans use the :meth:`Tracer.span` context manager, which maintains a nesting
stack so children automatically point at their enclosing span.

The buffer is bounded: once ``max_records`` spans are held, new records are
counted in :attr:`Tracer.dropped` and discarded (keeping the *earliest*
records preserves parents over orphaned children).  Nothing here touches
any RNG, so tracing can never perturb experiment results.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "CLOCK_SIM", "CLOCK_WALL"]

CLOCK_SIM = "sim"
CLOCK_WALL = "wall"
_CLOCKS = (CLOCK_SIM, CLOCK_WALL)


@dataclass
class Span:
    """One trace record: a named interval (or point event) with attributes."""

    span_id: int
    parent_id: Optional[int]
    name: str
    clock: str
    start_us: float
    end_us: float
    kind: str = "span"  # "span" | "event"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


class Tracer:
    """Collects spans and events into a bounded in-memory buffer."""

    def __init__(self, max_records: int = 200_000) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.max_records = int(max_records)
        self.records: List[Span] = []
        self.dropped = 0
        self._next_id = 0
        self._stack: List[int] = []

    # ------------------------------------------------------------------ #

    def _admit(self, span: Span) -> Span:
        if len(self.records) >= self.max_records:
            self.dropped += 1
        else:
            self.records.append(span)
        return span

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    @staticmethod
    def _check_clock(clock: str) -> None:
        if clock not in _CLOCKS:
            raise ValueError(f"clock must be one of {_CLOCKS}, got {clock!r}")

    # ------------------------------------------------------------------ #

    def record_span(
        self,
        name: str,
        start_us: float,
        end_us: float,
        clock: str = CLOCK_SIM,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Record a completed interval (typically on the simulation clock).

        Returns the new span's id so callers can attach children to it.
        """
        self._check_clock(clock)
        span = Span(
            span_id=self._new_id(),
            parent_id=parent_id,
            name=name,
            clock=clock,
            start_us=float(start_us),
            end_us=float(end_us),
            attrs=attrs,
        )
        self._admit(span)
        return span.span_id

    def event(
        self,
        name: str,
        time_us: Optional[float] = None,
        clock: str = CLOCK_SIM,
        parent_id: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Record a zero-duration point event.

        ``time_us`` defaults to the wall clock (and forces ``clock="wall"``)
        when omitted.
        """
        if time_us is None:
            time_us = time.perf_counter() * 1e6
            clock = CLOCK_WALL
        self._check_clock(clock)
        if parent_id is None and clock == CLOCK_WALL and self._stack:
            parent_id = self._stack[-1]
        span = Span(
            span_id=self._new_id(),
            parent_id=parent_id,
            name=name,
            clock=clock,
            start_us=float(time_us),
            end_us=float(time_us),
            kind="event",
            attrs=attrs,
        )
        self._admit(span)
        return span.span_id

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """A wall-clock span covering the ``with`` body, nested automatically.

        The yielded :class:`Span` is live: the body may add attributes
        (``span.attrs["batch"] = n``) and they are kept in the record.
        """
        record = Span(
            span_id=self._new_id(),
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            clock=CLOCK_WALL,
            start_us=time.perf_counter() * 1e6,
            end_us=0.0,
            attrs=attrs,
        )
        # Admitted on entry (end_us patched at exit) so parents always precede
        # their children in the buffer — a full buffer then drops whole
        # subtrees rather than orphaning children.
        self._admit(record)
        self._stack.append(record.span_id)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end_us = time.perf_counter() * 1e6

    # ------------------------------------------------------------------ #

    def spans_named(self, name: str) -> List[Span]:
        """Every buffered record with the given name, in recording order."""
        return [span for span in self.records if span.name == name]

    def __len__(self) -> int:
        return len(self.records)
