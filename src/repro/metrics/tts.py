"""Time-to-solution (TTS), the paper's headline performance metric (Eq. 2).

TTS(C_t) is the expected wall-clock time needed to observe the global optimum
at least once with confidence ``C_t``, given a solver whose single execution
lasts ``duration`` and succeeds with probability ``p*``:

    TTS(C_t) = duration * log(1 - C_t/100) / log(1 - p*).

Conventions handled explicitly:

* ``p* = 0``  → TTS is infinite (the solver never succeeds);
* ``p* = 1``  → TTS equals one execution's duration;
* ``p* >= C_t/100`` would make the repeat count smaller than one; the repeat
  count is floored at 1 because a solver cannot run for less than one
  execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.annealing.sampleset import SampleSet
from repro.exceptions import ConfigurationError

__all__ = ["time_to_solution", "tts_from_sampleset", "TTSResult"]


@dataclass(frozen=True)
class TTSResult:
    """TTS together with the quantities it was computed from."""

    tts_us: float
    success_probability: float
    duration_us: float
    confidence_percent: float
    repeats: float

    @property
    def is_finite(self) -> bool:
        """Whether the solver ever found the optimum (p* > 0)."""
        return np.isfinite(self.tts_us)


def time_to_solution(
    success_probability: float,
    duration_us: float,
    confidence_percent: float = 99.0,
) -> TTSResult:
    """Compute TTS(C_t%) from a success probability and per-run duration."""
    if not 0.0 <= success_probability <= 1.0:
        raise ConfigurationError(
            f"success_probability must lie in [0, 1], got {success_probability}"
        )
    if duration_us <= 0:
        raise ConfigurationError(f"duration_us must be positive, got {duration_us}")
    if not 0.0 < confidence_percent < 100.0:
        raise ConfigurationError(
            f"confidence_percent must lie strictly inside (0, 100), got {confidence_percent}"
        )

    if success_probability == 0.0:
        repeats = np.inf
    elif success_probability == 1.0:
        repeats = 1.0
    else:
        repeats = np.log(1.0 - confidence_percent / 100.0) / np.log(1.0 - success_probability)
        repeats = max(repeats, 1.0)

    tts = duration_us * repeats
    return TTSResult(
        tts_us=float(tts),
        success_probability=float(success_probability),
        duration_us=float(duration_us),
        confidence_percent=float(confidence_percent),
        repeats=float(repeats),
    )


def tts_from_sampleset(
    sampleset: SampleSet,
    ground_energy: float,
    confidence_percent: float = 99.0,
    duration_us: Optional[float] = None,
    tolerance: float = 1e-6,
) -> TTSResult:
    """Compute TTS from a sample set's empirical success probability.

    ``duration_us`` defaults to the anneal-schedule duration recorded in the
    sample set's metadata — the same convention the paper uses (TTS counts
    pure anneal time, not programming or readout overheads).
    """
    duration = duration_us
    if duration is None:
        duration = sampleset.metadata.get("schedule_duration_us")
    if duration is None:
        raise ConfigurationError(
            "duration_us not given and the sample set has no schedule metadata"
        )
    probability = sampleset.success_probability(ground_energy, tolerance)
    return time_to_solution(probability, float(duration), confidence_percent)
