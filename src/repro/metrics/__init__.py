"""Evaluation metrics used throughout the paper's experiments.

* :mod:`repro.metrics.quality` — the ΔE% solution-quality percentile (paper
  Sec. 4.3), initial-state quality ΔE_IS%, and ground-state success
  probability.
* :mod:`repro.metrics.tts` — time-to-solution TTS(C_t%) (paper Eq. 2).
* :mod:`repro.metrics.statistics` — distribution summaries and bootstrap
  confidence intervals used by the experiment runners.
"""

from repro.metrics.quality import (
    delta_e_percent,
    delta_e_distribution,
    initial_state_quality,
    success_probability,
    expectation_value,
)
from repro.metrics.tts import time_to_solution, tts_from_sampleset, TTSResult
from repro.metrics.statistics import (
    bootstrap_confidence_interval,
    summarize_distribution,
    DistributionSummary,
    histogram_percentiles,
)

__all__ = [
    "delta_e_percent",
    "delta_e_distribution",
    "initial_state_quality",
    "success_probability",
    "expectation_value",
    "time_to_solution",
    "tts_from_sampleset",
    "TTSResult",
    "bootstrap_confidence_interval",
    "summarize_distribution",
    "DistributionSummary",
    "histogram_percentiles",
]
