"""Solution-quality metrics: ΔE%, ΔE_IS%, success probability.

The paper defines the quality of a sample with cost ``E_s`` relative to the
best possible cost ``E_g`` as

    ΔE% = 100 * (E_g - |E_s|) / E_g                     (paper Sec. 4.3)

where, by the QuAMax convention this library follows (the constant term of
the detection objective is excluded from the QUBO), the ground-state energy
``E_g`` is negative and every sample energy lies in ``[E_g, 0]``.  Evaluating
the formula with the *magnitudes* of those costs — equivalently
``100 * (|E_g| - |E_s|) / |E_g|`` — yields 0% exactly at the global optimum
and 100% for a worthless sample, which is how the paper's Figures 6–8 read.
:func:`delta_e_percent` implements that reading and also handles the general
case where energies may be positive (a sample *above* zero can only happen for
models that did not come from the QuAMax transform; its gap is then measured
linearly past 100%).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.annealing.sampleset import SampleSet
from repro.exceptions import ConfigurationError
from repro.qubo.model import QUBOModel

__all__ = [
    "delta_e_percent",
    "delta_e_distribution",
    "initial_state_quality",
    "success_probability",
    "expectation_value",
]


def delta_e_percent(sample_energy: float, ground_energy: float) -> float:
    """Quality percentile ΔE% of one sample relative to the ground energy.

    0% means the sample reached the global optimum; 100% means the sample is
    as far from the optimum as the zero-energy assignment.  ``ground_energy``
    must be strictly negative (the QuAMax convention); a non-negative ground
    energy makes the percentile ill-defined and raises ``ConfigurationError``.
    """
    if ground_energy >= 0:
        raise ConfigurationError(
            "delta_e_percent requires a strictly negative ground energy "
            f"(QuAMax convention); got {ground_energy}"
        )
    magnitude_ground = abs(ground_energy)
    # Samples can in principle land above zero energy; measure their gap
    # linearly so the metric stays monotone in the energy.
    gap = sample_energy - ground_energy
    return float(100.0 * gap / magnitude_ground)


def delta_e_distribution(
    sampleset_or_energies: Union[SampleSet, Sequence[float]],
    ground_energy: float,
) -> np.ndarray:
    """ΔE% of every read in a sample set (or plain energy sequence).

    For a :class:`SampleSet` the distribution is expanded by occurrence count,
    one entry per read, matching how the paper's Figure 6 histograms are
    normalised.
    """
    if isinstance(sampleset_or_energies, SampleSet):
        energies = sampleset_or_energies.energies(expanded=True)
    else:
        energies = np.asarray(sampleset_or_energies, dtype=float).ravel()
    return np.array([delta_e_percent(energy, ground_energy) for energy in energies])


def initial_state_quality(
    qubo: QUBOModel, initial_state: Sequence[int], ground_energy: float
) -> float:
    """ΔE_IS%: the quality of a candidate initial state for reverse annealing."""
    energy = qubo.energy(initial_state)
    return delta_e_percent(energy, ground_energy)


def success_probability(
    sampleset: SampleSet, ground_energy: float, tolerance: float = 1e-6
) -> float:
    """Fraction of reads that found the ground state (p* in the paper)."""
    return sampleset.success_probability(ground_energy, tolerance)


def expectation_value(sampleset: SampleSet) -> float:
    """Occurrence-weighted mean sample energy (paper Figure 7's cost curve)."""
    return sampleset.expectation_energy()
