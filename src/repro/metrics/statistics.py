"""Distribution summaries and resampling statistics for experiment reports.

The paper reports averaged distributions over many instances and many anneal
samples.  The helpers here compute the standard summaries (median, mean,
percentiles), percentile histograms of ΔE% distributions (the shape shown in
paper Figure 6), and bootstrap confidence intervals for derived quantities
such as success probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "DistributionSummary",
    "summarize_distribution",
    "bootstrap_confidence_interval",
    "histogram_percentiles",
]


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of a one-dimensional sample."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    percentile_5: float
    percentile_25: float
    percentile_75: float
    percentile_95: float


def summarize_distribution(values: Sequence[float]) -> DistributionSummary:
    """Compute a :class:`DistributionSummary` for a non-empty sample."""
    array = np.asarray(values, dtype=float).ravel()
    if array.size == 0:
        raise ConfigurationError("cannot summarise an empty distribution")
    return DistributionSummary(
        count=int(array.size),
        mean=float(np.mean(array)),
        median=float(np.median(array)),
        std=float(np.std(array)),
        minimum=float(np.min(array)),
        maximum=float(np.max(array)),
        percentile_5=float(np.percentile(array, 5)),
        percentile_25=float(np.percentile(array, 25)),
        percentile_75=float(np.percentile(array, 75)),
        percentile_95=float(np.percentile(array, 95)),
    )


def bootstrap_confidence_interval(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    num_resamples: int = 1000,
    rng: RandomState = None,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap confidence interval for an arbitrary statistic.

    Returns ``(point_estimate, lower, upper)``.
    """
    array = np.asarray(values, dtype=float).ravel()
    if array.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must lie in (0, 1), got {confidence}")
    if num_resamples <= 0:
        raise ConfigurationError(f"num_resamples must be positive, got {num_resamples}")

    generator = ensure_rng(rng)
    point = float(statistic(array))
    resampled = np.empty(num_resamples)
    for index in range(num_resamples):
        draw = generator.choice(array, size=array.size, replace=True)
        resampled[index] = statistic(draw)
    alpha = (1.0 - confidence) / 2.0
    lower = float(np.percentile(resampled, 100.0 * alpha))
    upper = float(np.percentile(resampled, 100.0 * (1.0 - alpha)))
    return point, lower, upper


def histogram_percentiles(
    values: Sequence[float],
    bin_edges: Sequence[float],
) -> np.ndarray:
    """Fraction of samples falling in each bin (sums to 1 for covering bins).

    Used to reproduce the "average distribution of cost function value
    percentile" histograms of paper Figure 6.
    """
    array = np.asarray(values, dtype=float).ravel()
    edges = np.asarray(bin_edges, dtype=float).ravel()
    if edges.size < 2:
        raise ConfigurationError("bin_edges must contain at least two edges")
    if np.any(np.diff(edges) <= 0):
        raise ConfigurationError("bin_edges must be strictly increasing")
    if array.size == 0:
        return np.zeros(edges.size - 1)
    counts, _ = np.histogram(array, bins=edges)
    return counts / array.size
