"""Cell-network topologies: cells, positions and neighbour graphs.

The serving layer historically identified cells by bare integers and wired
"neighbourhood" as ``cell_id +- 1`` where it mattered (cell-outage spill,
interference coupling).  :class:`NetworkTopology` makes the layout explicit:
every cell has a plane position and a symmetric neighbour set, and three
standard layouts are provided —

* ``line``    — cells at ``(0, 0), (1, 0), ...``; neighbours are ``id +- 1``.
  This is exactly the implicit layout the pre-topology code assumed, so
  passing a line topology reproduces the legacy behaviour (``docs/network.md``
  spells out the bitwise-compatibility rules).
* ``grid``    — a ``rows x cols`` Manhattan grid with 4-neighbour adjacency.
* ``hex``     — a ``rows x cols`` odd-row-offset hexagonal tiling with
  6-neighbour adjacency, the classic cellular-planning layout.

Topologies are frozen, hashable and picklable; all internals are tuples so a
topology can ride inside scenario phases and cross process-pool boundaries
without surprises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["Cell", "NetworkTopology", "build_topology", "TOPOLOGY_KINDS"]

#: Layout names accepted by :func:`build_topology`.
TOPOLOGY_KINDS: Tuple[str, ...] = ("line", "grid", "hex")

#: Vertical spacing of hexagonal rows (centre distance of touching hexes).
_HEX_ROW_PITCH = math.sqrt(3.0) / 2.0


@dataclass(frozen=True)
class Cell:
    """One cell site: a stable id plus a position in the coverage plane."""

    cell_id: int
    x: float
    y: float

    def __post_init__(self) -> None:
        if self.cell_id < 0:
            raise ConfigurationError(f"cell_id must be non-negative, got {self.cell_id}")


@dataclass(frozen=True)
class NetworkTopology:
    """An immutable cell layout with an explicit symmetric neighbour graph.

    Attributes
    ----------
    kind:
        Layout family (``"line"``, ``"grid"`` or ``"hex"``); informational,
        carried so reports and cache keys can name the layout.
    cells:
        The cells in id order (``cells[i].cell_id == i``).
    neighbor_ids:
        ``neighbor_ids[i]`` is the sorted tuple of cell ids adjacent to cell
        ``i``.  The graph must be symmetric and self-loop free.
    """

    kind: str
    cells: Tuple[Cell, ...]
    neighbor_ids: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.cells:
            raise ConfigurationError("a topology needs at least one cell")
        if len(self.neighbor_ids) != len(self.cells):
            raise ConfigurationError(
                f"{len(self.neighbor_ids)} neighbour sets for {len(self.cells)} cells"
            )
        for index, cell in enumerate(self.cells):
            if cell.cell_id != index:
                raise ConfigurationError(
                    f"cells must be listed in id order; position {index} holds "
                    f"cell_id {cell.cell_id}"
                )
        count = len(self.cells)
        for cell_id, neighbours in enumerate(self.neighbor_ids):
            for neighbour in neighbours:
                if not 0 <= neighbour < count:
                    raise ConfigurationError(
                        f"cell {cell_id} lists neighbour {neighbour}, outside the "
                        f"{count}-cell layout"
                    )
                if neighbour == cell_id:
                    raise ConfigurationError(f"cell {cell_id} lists itself as neighbour")
                if cell_id not in self.neighbor_ids[neighbour]:
                    raise ConfigurationError(
                        f"asymmetric neighbour graph: {cell_id} -> {neighbour} has no "
                        "reverse edge"
                    )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def line(cls, num_cells: int) -> "NetworkTopology":
        """Cells along the x axis; neighbours are ``cell_id +- 1``."""
        if num_cells <= 0:
            raise ConfigurationError(f"num_cells must be positive, got {num_cells}")
        cells = tuple(Cell(cell_id, float(cell_id), 0.0) for cell_id in range(num_cells))
        neighbours = tuple(
            tuple(
                other
                for other in (cell_id - 1, cell_id + 1)
                if 0 <= other < num_cells
            )
            for cell_id in range(num_cells)
        )
        return cls(kind="line", cells=cells, neighbor_ids=neighbours)

    @classmethod
    def grid(cls, rows: int, cols: int) -> "NetworkTopology":
        """A ``rows x cols`` Manhattan grid, row-major ids, 4-neighbour."""
        _check_dimensions(rows, cols)
        cells = tuple(
            Cell(row * cols + col, float(col), float(row))
            for row in range(rows)
            for col in range(cols)
        )
        neighbours = []
        for row in range(rows):
            for col in range(cols):
                adjacent = []
                for delta_row, delta_col in ((-1, 0), (0, -1), (0, 1), (1, 0)):
                    other_row, other_col = row + delta_row, col + delta_col
                    if 0 <= other_row < rows and 0 <= other_col < cols:
                        adjacent.append(other_row * cols + other_col)
                neighbours.append(tuple(sorted(adjacent)))
        return cls(kind="grid", cells=cells, neighbor_ids=tuple(neighbours))

    @classmethod
    def hex_grid(cls, rows: int, cols: int) -> "NetworkTopology":
        """A ``rows x cols`` odd-row-offset hexagonal tiling, 6-neighbour."""
        _check_dimensions(rows, cols)
        cells = tuple(
            Cell(
                row * cols + col,
                float(col) + (0.5 if row % 2 else 0.0),
                float(row) * _HEX_ROW_PITCH,
            )
            for row in range(rows)
            for col in range(cols)
        )
        neighbours = []
        for row in range(rows):
            # Odd-r offset adjacency: the diagonal column shift depends on
            # the parity of the row.
            if row % 2:
                diagonals = ((-1, 0), (-1, 1), (1, 0), (1, 1))
            else:
                diagonals = ((-1, -1), (-1, 0), (1, -1), (1, 0))
            for col in range(cols):
                adjacent = []
                for delta_row, delta_col in ((0, -1), (0, 1)) + diagonals:
                    other_row, other_col = row + delta_row, col + delta_col
                    if 0 <= other_row < rows and 0 <= other_col < cols:
                        adjacent.append(other_row * cols + other_col)
                neighbours.append(tuple(sorted(adjacent)))
        return cls(kind="hex", cells=cells, neighbor_ids=tuple(neighbours))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def num_cells(self) -> int:
        """Number of cells in the layout."""
        return len(self.cells)

    def neighbors(self, cell_id: int) -> Tuple[int, ...]:
        """The sorted neighbour ids of ``cell_id``."""
        self._check_cell(cell_id)
        return self.neighbor_ids[cell_id]

    def position(self, cell_id: int) -> Tuple[float, float]:
        """The plane position of ``cell_id``."""
        self._check_cell(cell_id)
        cell = self.cells[cell_id]
        return (cell.x, cell.y)

    def random_neighbor(self, cell_id: int, rng: "np.random.Generator") -> int:
        """A uniformly drawn neighbour of ``cell_id`` (the handover target).

        An isolated cell (no neighbours — a 1-cell layout) hands over to
        itself, so mobility models never have to special-case degenerate
        topologies.  Exactly one draw is consumed from ``rng`` either way,
        keeping per-user handover streams aligned across layouts.
        """
        neighbours = self.neighbors(cell_id)
        position = int(rng.integers(0, max(len(neighbours), 1)))
        return neighbours[position] if neighbours else cell_id

    def distance(self, first: int, second: int) -> float:
        """Euclidean centre distance between two cells.

        On a line layout this equals ``abs(first - second)`` *exactly*
        (``math.hypot`` of a zero second component is the absolute value),
        which is what keeps position-based phase arithmetic bitwise-equal to
        the legacy index arithmetic.
        """
        ax, ay = self.position(first)
        bx, by = self.position(second)
        return math.hypot(bx - ax, by - ay)

    def _check_cell(self, cell_id: int) -> None:
        if not 0 <= cell_id < len(self.cells):
            raise ConfigurationError(
                f"cell_id {cell_id} outside the {len(self.cells)}-cell layout"
            )


def _check_dimensions(rows: int, cols: int) -> None:
    if rows <= 0 or cols <= 0:
        raise ConfigurationError(
            f"rows and cols must be positive, got {rows} x {cols}"
        )


def build_topology(kind: str, rows: int, cols: int) -> NetworkTopology:
    """Instantiate a named layout from primitive parameters.

    Experiment configurations carry topologies as ``(kind, rows, cols)``
    primitives — not as live objects — so their cache fingerprints stay
    canonical; this is the one place the primitives become a topology.
    A ``line`` layout uses ``rows * cols`` cells.
    """
    if kind == "line":
        return NetworkTopology.line(rows * cols)
    if kind == "grid":
        return NetworkTopology.grid(rows, cols)
    if kind == "hex":
        return NetworkTopology.hex_grid(rows, cols)
    raise ConfigurationError(
        f"unknown topology kind {kind!r}; choose from {', '.join(TOPOLOGY_KINDS)}"
    )
