"""Per-cell KPI streams and O&M-metric hotspot localization.

Following "A New Alternative for Traffic Hotspot Localization in Wireless
Networks Using O&M Metrics", hotspots are detected from the counters an
operations system already collects — per-cell arrival counts per KPI window —
*never* from the scenario's ground-truth intensity field.  The detector
keeps, per cell, an exponentially weighted moving estimate of the counter's
mean and variance, scores each new window by its z-score against that
baseline, and raises a hotspot after ``confirm_windows`` consecutive
exceedances (clearing it again after ``clear_windows`` quiet windows — the
hysteresis that keeps a ramping crowd from flapping).

With a :class:`~repro.network.topology.NetworkTopology` attached the raise is
*localised*: the flagged cell's z-score is compared against its neighbours'
and the event is attributed to the strongest cell in the neighbourhood, the
paper's trick for telling a hotspot's centre from its spill-over.

When a telemetry session is active (:func:`repro.telemetry.active`), every
observation updates ``repro_network_*`` gauges/counters and raises/clears
emit ``network.hotspot`` trace events — instrumentation only; detector state
and return values are identical with telemetry off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.network.topology import NetworkTopology

__all__ = [
    "HotspotDetectorConfig",
    "HotspotEvent",
    "HotspotDetector",
    "cell_counts_from_outcomes",
]


@dataclass(frozen=True)
class HotspotDetectorConfig:
    """Tuning knobs of the EWMA/z-score hotspot detector.

    Attributes
    ----------
    alpha:
        EWMA weight of the newest window in the mean/variance baselines
        (smaller = longer memory, slower to absorb a hotspot into "normal").
    z_threshold:
        Z-score a window must exceed to count toward a raise.
    warmup_windows:
        Initial windows that only train the baseline (no raises): the first
        observation seeds the mean, so scoring it would be circular.
    confirm_windows:
        Consecutive exceedances required before a hotspot is raised —
        single-window Poisson flukes never page anyone.
    clear_windows:
        Consecutive sub-threshold windows before a raised hotspot clears.
    min_variance:
        Variance floor of the z-score denominator; counters are integer
        counts, so an idle cell's variance estimate may collapse to 0.
    """

    alpha: float = 0.2
    z_threshold: float = 4.0
    warmup_windows: int = 4
    confirm_windows: int = 2
    clear_windows: int = 3
    min_variance: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must lie in (0, 1], got {self.alpha}")
        if self.z_threshold <= 0:
            raise ConfigurationError(
                f"z_threshold must be positive, got {self.z_threshold}"
            )
        if self.warmup_windows < 1:
            raise ConfigurationError(
                f"warmup_windows must be at least 1, got {self.warmup_windows}"
            )
        if self.confirm_windows < 1:
            raise ConfigurationError(
                f"confirm_windows must be at least 1, got {self.confirm_windows}"
            )
        if self.clear_windows < 1:
            raise ConfigurationError(
                f"clear_windows must be at least 1, got {self.clear_windows}"
            )
        if self.min_variance <= 0:
            raise ConfigurationError(
                f"min_variance must be positive, got {self.min_variance}"
            )


@dataclass(frozen=True)
class HotspotEvent:
    """One detector state transition.

    ``cell_id`` is the *localised* cell (strongest z in the neighbourhood for
    raises); ``flagged_cell`` is the cell whose counter tripped the
    threshold — they differ when a spill-over neighbour trips first.
    """

    window: int
    time_us: float
    kind: str  # "raised" or "cleared"
    cell_id: int
    flagged_cell: int
    z_score: float
    count: int


class HotspotDetector:
    """Streaming per-cell EWMA/z-score detector over KPI counter windows."""

    def __init__(
        self,
        num_cells: int,
        config: Optional[HotspotDetectorConfig] = None,
        topology: Optional[NetworkTopology] = None,
    ) -> None:
        if num_cells <= 0:
            raise ConfigurationError(f"num_cells must be positive, got {num_cells}")
        if topology is not None and topology.num_cells != num_cells:
            raise ConfigurationError(
                f"topology has {topology.num_cells} cells, detector expects {num_cells}"
            )
        self.num_cells = int(num_cells)
        self.config = config if config is not None else HotspotDetectorConfig()
        self.topology = topology
        self.events: List[HotspotEvent] = []
        self._mean = np.zeros(num_cells)
        self._variance = np.zeros(num_cells)
        self._streak = np.zeros(num_cells, dtype=np.int64)
        self._quiet = np.zeros(num_cells, dtype=np.int64)
        self._hot: Dict[int, int] = {}  # localised cell -> raise window
        self._windows_seen = 0
        self._last_z = np.zeros(num_cells)

    # ------------------------------------------------------------------ #

    @property
    def hot_cells(self) -> Tuple[int, ...]:
        """Currently raised (localised) hotspot cells, sorted."""
        return tuple(sorted(self._hot))

    @property
    def windows_seen(self) -> int:
        """Number of observed KPI windows."""
        return self._windows_seen

    def z_score(self, cell_id: int) -> float:
        """The most recent window's z-score for ``cell_id``."""
        if not 0 <= cell_id < self.num_cells:
            raise ConfigurationError(
                f"cell_id {cell_id} outside the {self.num_cells}-cell detector"
            )
        return float(self._last_z[cell_id])

    def observe(
        self, window: int, time_us: float, counts: Sequence[int]
    ) -> List[HotspotEvent]:
        """Score one KPI window of per-cell counts; return state transitions.

        ``counts`` must hold one non-negative count per cell.  Baselines are
        scored first, updated second: a window is always judged against the
        history that *preceded* it.  During a raised hotspot the flagged
        cell's baseline is frozen so a long crowd does not teach the detector
        that 6x demand is normal.
        """
        values = np.asarray(counts, dtype=float)
        if values.shape != (self.num_cells,):
            raise ConfigurationError(
                f"expected {self.num_cells} per-cell counts, got shape {values.shape}"
            )
        if np.any(values < 0):
            raise ConfigurationError("counts must be non-negative")
        config = self.config
        transitions: List[HotspotEvent] = []

        if self._windows_seen == 0:
            self._mean = values.copy()
            self._variance = np.maximum(values, config.min_variance)
            self._last_z = np.zeros(self.num_cells)
            self._windows_seen = 1
            self._emit_telemetry(window, time_us, values)
            return transitions

        sigma = np.sqrt(np.maximum(self._variance, config.min_variance))
        scores = (values - self._mean) / sigma
        self._last_z = scores
        in_warmup = self._windows_seen < config.warmup_windows

        above = (scores > config.z_threshold) & ~in_warmup
        self._streak = np.where(above, self._streak + 1, 0)
        self._quiet = np.where(above, 0, self._quiet + 1)

        for cell_id in np.nonzero(self._streak >= config.confirm_windows)[0]:
            flagged = int(cell_id)
            localised = self._localise(flagged)
            if localised not in self._hot:
                self._hot[localised] = window
                transitions.append(
                    HotspotEvent(
                        window=window,
                        time_us=time_us,
                        kind="raised",
                        cell_id=localised,
                        flagged_cell=flagged,
                        z_score=float(scores[flagged]),
                        count=int(values[flagged]),
                    )
                )

        for localised in sorted(self._hot):
            if self._quiet[localised] >= config.clear_windows:
                del self._hot[localised]
                transitions.append(
                    HotspotEvent(
                        window=window,
                        time_us=time_us,
                        kind="cleared",
                        cell_id=localised,
                        flagged_cell=localised,
                        z_score=float(scores[localised]),
                        count=int(values[localised]),
                    )
                )

        # EWMA update last, frozen for cells whose streak is live so the
        # baseline keeps describing *normal* traffic.
        frozen = self._streak > 0
        alpha = config.alpha
        delta = values - self._mean
        new_mean = self._mean + alpha * delta
        new_variance = (1.0 - alpha) * (self._variance + alpha * delta * delta)
        self._mean = np.where(frozen, self._mean, new_mean)
        self._variance = np.where(frozen, self._variance, new_variance)
        self._windows_seen += 1

        self.events.extend(transitions)
        self._emit_telemetry(window, time_us, values, transitions)
        return transitions

    # ------------------------------------------------------------------ #

    def _localise(self, flagged: int) -> int:
        """Attribute a raise to the strongest cell in the neighbourhood."""
        if self.topology is None:
            return flagged
        candidates = (flagged,) + self.topology.neighbors(flagged)
        # Ties break toward the lowest cell id for determinism.
        return int(
            max(candidates, key=lambda cell: (float(self._last_z[cell]), -cell))
        )

    def _emit_telemetry(
        self,
        window: int,
        time_us: float,
        values: np.ndarray,
        transitions: Sequence[HotspotEvent] = (),
    ) -> None:
        tel = telemetry.active()
        if tel is None:
            return
        tel.registry.counter("repro_network_kpi_windows_total").inc()
        tel.registry.gauge("repro_network_hot_cells").set(len(self._hot))
        tel.registry.gauge("repro_network_peak_cell_count").set(float(values.max()))
        for event in transitions:
            tel.registry.counter(
                "repro_network_hotspot_events_total", kind=event.kind
            ).inc()
            tel.tracer.event(
                "network.hotspot",
                time_us=time_us,
                clock=telemetry.CLOCK_SIM,
                window=window,
                kind=event.kind,
                cell_id=event.cell_id,
                flagged_cell=event.flagged_cell,
                z_score=event.z_score,
                count=event.count,
            )


def cell_counts_from_outcomes(
    outcomes: Sequence[object], num_cells: int, window_us: float
) -> np.ndarray:
    """Bin served-job outcomes into the per-cell KPI counter matrix.

    Bridges the detailed serving simulator to the detector: any sequence of
    objects with ``cell_id`` and ``arrival_us`` attributes (e.g.
    :class:`~repro.serving.report.JobOutcome` or
    :class:`~repro.serving.workload.ServingJob`) becomes the same
    ``(num_windows, num_cells)`` count matrix :func:`cell_window_counts`
    produces at the aggregate level.
    """
    if num_cells <= 0:
        raise ConfigurationError(f"num_cells must be positive, got {num_cells}")
    if window_us <= 0:
        raise ConfigurationError(f"window_us must be positive, got {window_us}")
    if not outcomes:
        return np.zeros((0, num_cells), dtype=np.int64)
    horizon = max(float(outcome.arrival_us) for outcome in outcomes)
    windows = int(math.floor(horizon / window_us)) + 1
    counts = np.zeros((windows, num_cells), dtype=np.int64)
    for outcome in outcomes:
        cell = int(outcome.cell_id)
        if not 0 <= cell < num_cells:
            raise ConfigurationError(
                f"outcome cell_id {cell} outside the {num_cells}-cell layout"
            )
        counts[int(float(outcome.arrival_us) // window_us), cell] += 1
    return counts
