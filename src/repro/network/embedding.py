"""Virtual annealer-capacity placements and the fluid model scoring them.

The serving layer's detailed simulator prices one cluster's queue to the
microsecond; a city of hundreds of cells needs something cheaper to compare
*placements* — how much virtual annealer capacity each cell is embedded with.
This module provides both sides:

* three placement policies — :func:`static_capacity` (equal split, the
  baseline every operator starts from), :func:`oracle_capacity` (per-window
  proportional to the *true* offered load, the unreachable upper bound) and
  :class:`CapacityReembedder` (the online policy: reacts to hotspot-detector
  output, moving at most ``migration_budget`` capacity per KPI window while
  every cell keeps its ``min_capacity`` floor);
* :func:`simulate_fluid_network` — a deterministic fluid queue per cell:
  arrivals from the aggregate counter matrix, oldest-first service up to the
  cell's embedded capacity, jobs that wait longer than ``deadline_windows``
  windows counted missed.  No randomness, so placement comparisons are exact
  functions of the counter matrix and the capacity schedule.

Capacity is measured in jobs per KPI window throughout.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "EmbeddingConfig",
    "FluidCellReport",
    "FluidNetworkReport",
    "CapacityReembedder",
    "static_capacity",
    "oracle_capacity",
    "simulate_fluid_network",
]


@dataclass(frozen=True)
class EmbeddingConfig:
    """Capacity pool and movement constraints of a placement.

    Attributes
    ----------
    total_capacity:
        Network-wide embedded capacity, in jobs per KPI window.
    min_capacity:
        Per-cell floor no policy may dip under — every cell keeps enough
        capacity to serve its background load while donating to a hotspot.
    migration_budget:
        Most capacity the online re-embedder may move in one window
        (re-embedding virtual annealer lanes is not free; the budget models
        the migration cost).
    deadline_windows:
        Windows a job may wait (arrival window included) before the fluid
        model counts it missed.
    target_margin:
        Headroom factor of the online re-embedder: a hot cell is sized
        toward ``target_margin`` times its last observed counter, so a
        still-ramping crowd is met a little ahead of its trailing
        observation.
    """

    total_capacity: float
    min_capacity: float = 0.0
    migration_budget: float = float("inf")
    deadline_windows: int = 2
    target_margin: float = 1.2

    def __post_init__(self) -> None:
        if self.total_capacity <= 0:
            raise ConfigurationError(
                f"total_capacity must be positive, got {self.total_capacity}"
            )
        if self.min_capacity < 0:
            raise ConfigurationError(
                f"min_capacity must be non-negative, got {self.min_capacity}"
            )
        if self.migration_budget < 0:
            raise ConfigurationError(
                f"migration_budget must be non-negative, got {self.migration_budget}"
            )
        if self.deadline_windows < 1:
            raise ConfigurationError(
                f"deadline_windows must be at least 1, got {self.deadline_windows}"
            )
        if self.target_margin < 1.0:
            raise ConfigurationError(
                f"target_margin must be at least 1.0, got {self.target_margin}"
            )

    def check_feasible(self, num_cells: int) -> None:
        """Raise unless the floor leaves capacity to distribute."""
        if num_cells <= 0:
            raise ConfigurationError(f"num_cells must be positive, got {num_cells}")
        if self.min_capacity * num_cells > self.total_capacity:
            raise ConfigurationError(
                f"min_capacity {self.min_capacity} x {num_cells} cells exceeds "
                f"total_capacity {self.total_capacity}"
            )


def static_capacity(num_cells: int, config: EmbeddingConfig) -> np.ndarray:
    """The equal-split baseline: every cell gets ``total / num_cells``."""
    config.check_feasible(num_cells)
    return np.full(num_cells, config.total_capacity / num_cells)


def oracle_capacity(counts: np.ndarray, config: EmbeddingConfig) -> np.ndarray:
    """Clairvoyant per-window placement sized to the true offered load.

    Returns a ``(num_windows, num_cells)`` schedule.  Each window keeps every
    cell at the ``min_capacity`` floor and first covers each cell's *actual*
    demand above the floor; leftover capacity is split equally.  When a
    window's total demand exceeds the pool, the above-floor allocations are
    scaled down proportionally — no schedule with the same total could serve
    such a window fully.  The oracle ignores the migration budget: it is the
    upper bound reactive re-embedding is measured against, not a realisable
    policy.
    """
    matrix = np.asarray(counts, dtype=float)
    if matrix.ndim != 2:
        raise ConfigurationError(
            f"counts must be a (windows, cells) matrix, got shape {matrix.shape}"
        )
    num_cells = matrix.shape[1]
    config.check_feasible(num_cells)
    free = config.total_capacity - config.min_capacity * num_cells
    need = np.maximum(matrix - config.min_capacity, 0.0)
    need_total = need.sum(axis=1, keepdims=True)
    leftover = np.maximum(free - need_total, 0.0) / num_cells
    scale = np.where(need_total > free, free / np.where(need_total > 0, need_total, 1.0), 1.0)
    return config.min_capacity + need * scale + np.where(need_total > free, 0.0, leftover)


class CapacityReembedder:
    """Online capacity mover driven by hotspot-detector output.

    Starts from the static equal split.  Each window, :meth:`step` receives
    the detector's currently raised cells (plus, optionally, the last
    *observed* per-cell counters — the same O&M stream the detector scores,
    never ground truth) and returns the capacity vector in force for the
    coming window:

    * with hotspots raised, each hot cell is pulled toward
      ``target_margin`` times its observed demand; non-hot cells donate
      capacity above their own protected level (their observed demand, or
      the ``min_capacity`` floor when counters are not supplied) —
      proportionally to their surplus, at most ``migration_budget`` in
      total.  Sizing to observed demand is what keeps a long crowd from
      draining the whole city into one cell;
    * with none raised, capacity relaxes toward the equal split, under the
      same per-window budget.

    All arithmetic is plain float64 on deterministically ordered cells, so a
    replayed detector stream reproduces the schedule exactly.
    """

    def __init__(self, num_cells: int, config: EmbeddingConfig) -> None:
        config.check_feasible(num_cells)
        self.num_cells = int(num_cells)
        self.config = config
        self.capacity = static_capacity(num_cells, config)
        self.capacity_moved = 0.0
        self.windows_stepped = 0

    def step(
        self,
        hot_cells: Sequence[int],
        observed_counts: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Re-embed for one window; returns a copy of the capacity vector."""
        hot = sorted(set(int(cell) for cell in hot_cells))
        for cell in hot:
            if not 0 <= cell < self.num_cells:
                raise ConfigurationError(
                    f"hot cell {cell} outside the {self.num_cells}-cell layout"
                )
        observed = None
        if observed_counts is not None:
            observed = np.asarray(observed_counts, dtype=float)
            if observed.shape != (self.num_cells,):
                raise ConfigurationError(
                    f"expected {self.num_cells} observed counts, got shape "
                    f"{observed.shape}"
                )
        if hot and len(hot) < self.num_cells:
            self._move_toward_hot(np.asarray(hot, dtype=np.intp), observed)
        elif not hot:
            self._relax_toward_equal()
        self.windows_stepped += 1
        return self.capacity.copy()

    # ------------------------------------------------------------------ #

    def _move_toward_hot(
        self, hot: np.ndarray, observed: Optional[np.ndarray]
    ) -> None:
        config = self.config
        donors = np.setdiff1d(
            np.arange(self.num_cells, dtype=np.intp), hot, assume_unique=True
        )
        if observed is None:
            # No counters: donors protect only the floor, hot cells share
            # the whole pool (the legacy blind policy).
            surplus = np.maximum(self.capacity[donors] - config.min_capacity, 0.0)
            need = np.full(len(hot), float("inf"))
        else:
            protected = np.maximum(observed[donors], config.min_capacity)
            surplus = np.maximum(self.capacity[donors] - protected, 0.0)
            targets = np.maximum(
                config.target_margin * observed[hot], config.min_capacity
            )
            need = np.maximum(targets - self.capacity[hot], 0.0)
        available = float(surplus.sum())
        wanted = float(need.sum())  # inf in the counter-less policy
        pool = min(config.migration_budget, available, wanted)
        if pool <= 0.0:
            return
        self.capacity[donors] -= surplus * (pool / available)
        if np.isfinite(wanted):
            self.capacity[hot] += need * (pool / wanted)
        else:
            self.capacity[hot] += pool / len(hot)
        self.capacity_moved += pool

    def _relax_toward_equal(self) -> None:
        target = self.config.total_capacity / self.num_cells
        delta = target - self.capacity
        need = float(np.maximum(delta, 0.0).sum())
        if need <= 0.0:
            return
        move = min(self.config.migration_budget, need)
        # Scaling every delta by the same factor keeps the total conserved
        # (positive and negative deltas sum to zero).
        self.capacity += delta * (move / need)
        self.capacity_moved += move


@dataclass(frozen=True)
class FluidCellReport:
    """Per-cell tallies of one fluid-model run."""

    cell_id: int
    offered: int
    served: float
    missed: float
    residual: float
    peak_queue: float

    @property
    def miss_rate(self) -> float:
        """Fraction of offered jobs that blew their deadline."""
        return self.missed / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class FluidNetworkReport:
    """Network-wide tallies of one fluid-model run."""

    cells: Tuple[FluidCellReport, ...]
    num_windows: int
    offered: int
    served: float
    missed: float
    residual: float

    @property
    def miss_rate(self) -> float:
        """Fraction of all offered jobs that blew their deadline."""
        return self.missed / self.offered if self.offered else 0.0

    @property
    def peak_cell_miss_rate(self) -> float:
        """Worst single-cell miss rate."""
        return max((cell.miss_rate for cell in self.cells), default=0.0)


def simulate_fluid_network(
    counts: np.ndarray,
    capacity: np.ndarray,
    config: EmbeddingConfig,
    window_order: Optional[Sequence[np.ndarray]] = None,
) -> FluidNetworkReport:
    """Deterministic fluid queues scoring a capacity schedule against counts.

    ``counts`` is the ``(num_windows, num_cells)`` aggregate arrival matrix;
    ``capacity`` is either a static ``(num_cells,)`` vector or a per-window
    ``(num_windows, num_cells)`` schedule (e.g. an oracle plan or the stacked
    outputs of a :class:`CapacityReembedder`).  ``window_order`` overrides the
    capacity row used per window — rarely needed; provided so callers that
    compute capacity on the fly can replay it.

    Each window, each cell enqueues its arrivals, serves up to its embedded
    capacity oldest-first, then drops (as missed) whatever has now waited
    ``deadline_windows`` windows.  Jobs still queued when the horizon ends are
    reported as ``residual`` — neither served nor missed — and
    ``offered == served + missed + residual`` holds exactly per cell.
    """
    matrix = np.asarray(counts, dtype=float)
    if matrix.ndim != 2:
        raise ConfigurationError(
            f"counts must be a (windows, cells) matrix, got shape {matrix.shape}"
        )
    if np.any(matrix < 0):
        raise ConfigurationError("counts must be non-negative")
    num_windows, num_cells = matrix.shape
    plan = np.asarray(capacity, dtype=float)
    if plan.ndim == 1:
        if plan.shape != (num_cells,):
            raise ConfigurationError(
                f"static capacity must have {num_cells} entries, got {plan.shape}"
            )
        plan = np.broadcast_to(plan, (num_windows, num_cells))
    elif plan.shape != (num_windows, num_cells):
        raise ConfigurationError(
            f"capacity schedule shape {plan.shape} does not match counts "
            f"shape {matrix.shape}"
        )
    if np.any(plan < 0):
        raise ConfigurationError("capacity must be non-negative")
    if window_order is not None and len(window_order) != num_windows:
        raise ConfigurationError(
            f"window_order has {len(window_order)} rows for {num_windows} windows"
        )

    deadline = config.deadline_windows
    served = np.zeros(num_cells)
    missed = np.zeros(num_cells)
    peak_queue = np.zeros(num_cells)
    # One FIFO of (arrival_window, jobs) buckets per cell.
    queues: List[Deque[List[float]]] = [deque() for _ in range(num_cells)]

    for window in range(num_windows):
        row = window_order[window] if window_order is not None else plan[window]
        for cell in range(num_cells):
            queue = queues[cell]
            arrivals = matrix[window, cell]
            if arrivals > 0:
                queue.append([window, arrivals])
            # A job arriving in window w must be served by the end of
            # window w + deadline - 1, so anything older has already missed
            # and cannot consume this window's capacity.
            while queue and queue[0][0] <= window - deadline:
                missed[cell] += queue.popleft()[1]
            budget = float(row[cell])
            while queue and budget > 0.0:
                bucket = queue[0]
                take = min(bucket[1], budget)
                bucket[1] -= take
                budget -= take
                served[cell] += take
                if bucket[1] <= 0.0:
                    queue.popleft()
            depth = sum(bucket[1] for bucket in queue)
            if depth > peak_queue[cell]:
                peak_queue[cell] = depth

    residual = np.array(
        [sum(bucket[1] for bucket in queues[cell]) for cell in range(num_cells)]
    )
    offered_per_cell = matrix.sum(axis=0)
    cells = tuple(
        FluidCellReport(
            cell_id=cell,
            offered=int(offered_per_cell[cell]),
            served=float(served[cell]),
            missed=float(missed[cell]),
            residual=float(residual[cell]),
            peak_queue=float(peak_queue[cell]),
        )
        for cell in range(num_cells)
    )
    return FluidNetworkReport(
        cells=cells,
        num_windows=num_windows,
        offered=int(offered_per_cell.sum()),
        served=float(served.sum()),
        missed=float(missed.sum()),
        residual=float(residual.sum()),
    )
