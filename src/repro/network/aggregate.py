"""Hierarchical traffic aggregation for city-scale cell networks.

The per-user workload generator (:mod:`repro.serving.workload`) materialises
one :class:`~repro.wireless.traffic.ChannelUse` object per detection job —
exactly right for a cell-cluster of dozens of users, hopeless for the
ROADMAP's "millions of users".  This module is the scale path:

* **Counter level** — :func:`cell_window_counts` samples, per cell and per
  KPI window, a Poisson *count* of arrivals at the cell's aggregate rate
  (``users_per_cell / symbol_period_us`` times the scenario's intensity
  field).  By Poisson superposition the merged stream of ``U`` independent
  per-user Poisson processes *is* a Poisson process at ``U`` times the rate,
  so the counts are statistically exact for the population — while memory is
  ``O(num_cells x num_windows)``, independent of the user count.  These
  counts are the O&M counter stream the hotspot detector consumes.
* **Detail level** — :func:`materialize_cell_jobs` instantiates real
  :class:`~repro.serving.workload.ServingJob` objects, but only for the few
  cells a detector (or an analyst) singles out, by drawing one cell-level
  inhomogeneous Poisson stream at the aggregate rate.  Each cell's stream
  has its own :func:`~repro.utils.rng.stable_seed`-derived generator, so the
  jobs of a cell do not depend on *which other* cells were materialised.

Both levels modulate rates through the same scenario intensity field that
drives the per-user path, and both are exactly reproducible from their
seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs, stable_seed
from repro.wireless.mimo import MIMOConfig
from repro.wireless.traffic import TrafficGenerator

if TYPE_CHECKING:  # pragma: no cover - serving imports this package's topology
    from repro.serving.scenarios import NetworkScenario
    from repro.serving.workload import ServingJob

__all__ = ["AggregationConfig", "cell_window_counts", "materialize_cell_jobs"]


@dataclass(frozen=True)
class AggregationConfig:
    """Population and sampling-grain parameters of the aggregate model.

    Attributes
    ----------
    users_per_cell:
        Simulated users attached to each cell.  Only the *rate* scales with
        this number — no per-user object is ever allocated.
    symbol_period_us:
        Mean per-user channel-use spacing at intensity multiplier 1.0 (same
        meaning as :class:`~repro.serving.workload.UserProfile`).
    window_us:
        KPI counter window.  Counts are sampled per window at the window
        midpoint's intensity (piecewise-constant approximation of the
        inhomogeneous rate; scenario phases vary slowly relative to any
        sensible window).
    """

    users_per_cell: int = 1000
    symbol_period_us: float = 71.4
    window_us: float = 500.0

    def __post_init__(self) -> None:
        if self.users_per_cell <= 0:
            raise ConfigurationError(
                f"users_per_cell must be positive, got {self.users_per_cell}"
            )
        if self.symbol_period_us <= 0:
            raise ConfigurationError(
                f"symbol_period_us must be positive, got {self.symbol_period_us}"
            )
        if self.window_us <= 0:
            raise ConfigurationError(f"window_us must be positive, got {self.window_us}")

    @property
    def cell_rate_per_us(self) -> float:
        """Aggregate nominal arrival rate of one cell (jobs per microsecond)."""
        return self.users_per_cell / self.symbol_period_us

    def num_windows(self, horizon_us: float) -> int:
        """Number of whole KPI windows covering ``[0, horizon_us)``."""
        if horizon_us <= 0:
            raise ConfigurationError(f"horizon_us must be positive, got {horizon_us}")
        return int(np.ceil(horizon_us / self.window_us))


def cell_window_counts(
    scenario: "NetworkScenario",
    config: AggregationConfig,
    rng: RandomState = None,
) -> np.ndarray:
    """Per-cell, per-window Poisson arrival counts under the scenario.

    Returns an int64 array of shape ``(num_windows, num_cells)`` where entry
    ``(w, c)`` is the number of jobs cell ``c`` offered during window ``w``.
    Cell ``c`` draws from child generator ``c`` (spawned in cell order from
    the root), so the counter stream of one cell never depends on how many
    windows another cell was sampled for.
    """
    windows = config.num_windows(scenario.duration_us)
    num_cells = scenario.num_cells
    midpoints = (np.arange(windows) + 0.5) * config.window_us
    # Windows never extend past the horizon mid-point-wise; clip the last
    # midpoint into the scenario domain (intensity is 0 outside it anyway).
    midpoints = np.minimum(midpoints, np.nextafter(scenario.duration_us, 0.0))
    children = spawn_rngs(ensure_rng(rng), num_cells)
    counts = np.zeros((windows, num_cells), dtype=np.int64)
    base = config.cell_rate_per_us * config.window_us
    for cell_id, child in enumerate(children):
        means = base * np.array(
            [scenario.intensity(cell_id, float(t)) for t in midpoints]
        )
        counts[:, cell_id] = child.poisson(means)
    return counts


def materialize_cell_jobs(
    scenario: "NetworkScenario",
    cells: Sequence[int],
    config: AggregationConfig,
    mimo_configs: Sequence[MIMOConfig],
    base_seed: int = 0,
    max_jobs_per_cell: int = 500,
    turnaround_budget_us: Optional[float] = 500.0,
    start_us: float = 0.0,
    horizon_us: Optional[float] = None,
) -> List["ServingJob"]:
    """Materialise real :class:`ServingJob` streams for selected cells only.

    Each requested cell gets one *cell-level* traffic generator whose period
    is ``symbol_period_us / users_per_cell`` — the aggregate of its whole
    population (exact by Poisson superposition) — modulated by the
    scenario's intensity for that cell over ``[start_us, horizon_us)``.
    ``max_jobs_per_cell`` caps materialisation (the sampled head of the
    stream) so a detector zooming into a flash crowd never allocates the
    crowd.  Per-cell generators are seeded by
    ``stable_seed("network-detail", base_seed, cell_id)``: the jobs of a
    cell are identical no matter which other cells are materialised.

    Jobs are merged in ``(arrival, cell, index)`` order and carry the cell id
    as ``user_id`` (the "user" is the cell's aggregate population).
    """
    # Imported here: repro.serving.scenarios itself imports this package's
    # topology module, so a module-level import would be circular.
    from repro.serving.workload import ServingJob

    if not cells:
        raise ConfigurationError("cells must not be empty")
    if len(set(cells)) != len(cells):
        raise ConfigurationError(f"duplicate cell ids in {tuple(cells)!r}")
    if max_jobs_per_cell <= 0:
        raise ConfigurationError(
            f"max_jobs_per_cell must be positive, got {max_jobs_per_cell}"
        )
    if not mimo_configs:
        raise ConfigurationError("mimo_configs must not be empty")
    end_us = scenario.duration_us if horizon_us is None else float(horizon_us)
    if not 0.0 <= start_us < end_us:
        raise ConfigurationError(
            f"start_us {start_us} must lie in [0, horizon {end_us})"
        )
    if end_us > scenario.duration_us:
        raise ConfigurationError(
            f"horizon_us {end_us} exceeds the scenario duration {scenario.duration_us}"
        )

    tagged: List[Tuple[float, int, int, object]] = []
    peak = scenario.peak_intensity()
    for cell_id in cells:
        if not 0 <= cell_id < scenario.num_cells:
            raise ConfigurationError(
                f"cell {cell_id} outside scenario {scenario.name!r}'s "
                f"{scenario.num_cells}-cell layout"
            )
        generator = TrafficGenerator(
            tuple(mimo_configs),
            symbol_period_us=config.symbol_period_us / config.users_per_cell,
            arrival_process="poisson",
            turnaround_budget_us=turnaround_budget_us,
        )
        child = ensure_rng(stable_seed("network-detail", base_seed, cell_id))
        stream = generator.stream_modulated(
            horizon_us=end_us,
            intensity=lambda t_us, cell=cell_id: scenario.intensity(cell, t_us),
            peak_intensity=peak,
            rng=child,
            max_count=max_jobs_per_cell,
            start_us=start_us,
        )
        for use in stream:
            tagged.append((use.arrival_time_us, cell_id, use.index, use))

    tagged.sort(key=lambda item: (item[0], item[1], item[2]))
    return [
        ServingJob(job_id=job_id, user_id=cell_id, cell_id=cell_id, channel_use=use)
        for job_id, (_, cell_id, _, use) in enumerate(tagged)
    ]
