"""The cell-network layer: topology, aggregate traffic, detection, embedding.

Serving used to treat "cells" as bare integer ids threaded through ad-hoc
dicts; this package promotes them to a first-class layer that the rest of the
stack (wireless interference coupling, serving scenarios, experiments, CLI)
is wired onto:

* :mod:`repro.network.topology` — :class:`Cell` and :class:`NetworkTopology`
  (line / grid / hex layouts with explicit neighbour graphs and positions).
* :mod:`repro.network.aggregate` — hierarchical traffic aggregation: per-cell
  inhomogeneous Poisson *counters* for city-scale populations (O(cells x
  windows) memory, never O(users) objects) plus cell-level job
  materialisation for the few cells a detector singles out.
* :mod:`repro.network.kpi` — the per-cell KPI/O&M metric stream and the
  EWMA/z-score :class:`HotspotDetector` that localises emerging flash crowds
  from counters alone (no ground-truth intensities).
* :mod:`repro.network.embedding` — static / oracle / reactive virtual
  annealer-capacity placements and the deterministic fluid serving model the
  network study scores them under.

Every component follows the library-wide reproducibility discipline: all
randomness enters through explicit seeds, and single-cluster configurations
that never name a topology run the exact pre-existing code paths bitwise
(see ``docs/network.md`` for the compatibility rules).
"""

from repro.network.topology import Cell, NetworkTopology, build_topology
from repro.network.aggregate import (
    AggregationConfig,
    cell_window_counts,
    materialize_cell_jobs,
)
from repro.network.kpi import (
    HotspotDetector,
    HotspotDetectorConfig,
    HotspotEvent,
    cell_counts_from_outcomes,
)
from repro.network.embedding import (
    CapacityReembedder,
    EmbeddingConfig,
    FluidCellReport,
    FluidNetworkReport,
    oracle_capacity,
    simulate_fluid_network,
    static_capacity,
)

__all__ = [
    "Cell",
    "NetworkTopology",
    "build_topology",
    "AggregationConfig",
    "cell_window_counts",
    "materialize_cell_jobs",
    "HotspotDetector",
    "HotspotDetectorConfig",
    "HotspotEvent",
    "cell_counts_from_outcomes",
    "CapacityReembedder",
    "EmbeddingConfig",
    "FluidCellReport",
    "FluidNetworkReport",
    "oracle_capacity",
    "simulate_fluid_network",
    "static_capacity",
]
