"""Classical simulated annealing over QUBO assignments.

Simulated annealing (SA) is the conventional classical baseline for
QUBO/Ising heuristics and one of the "classical approximate solvers" the
paper's conclusion lists as candidates for richer hybrid designs.  The
implementation performs single-bit-flip Metropolis sweeps under a geometric
temperature schedule, using the model's incremental energy-delta evaluation so
each sweep costs O(N^2) in the dense case and O(N * degree) for sparse models.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.classical.base import QuboSolution, QuboSolver
from repro.exceptions import ConfigurationError
from repro.qubo.model import QUBOModel
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["SimulatedAnnealingSolver"]


class SimulatedAnnealingSolver(QuboSolver):
    """Single-flip Metropolis simulated annealing.

    Parameters
    ----------
    num_sweeps:
        Number of full sweeps (each sweep proposes one flip per variable).
    initial_temperature / final_temperature:
        End points of the geometric cooling schedule, in energy units.  If
        ``initial_temperature`` is ``None`` it is auto-scaled to the model's
        largest absolute coefficient so acceptance starts near 1.
    initial_state:
        Optional starting assignment (defaults to uniformly random), allowing
        SA to be used as a refinement stage like RA.
    time_per_sweep_us:
        Modelled compute time charged per sweep for pipeline accounting.
    """

    name = "simulated-annealing"

    def __init__(
        self,
        num_sweeps: int = 200,
        initial_temperature: Optional[float] = None,
        final_temperature: float = 0.01,
        initial_state: Optional[Sequence[int]] = None,
        time_per_sweep_us: float = 0.1,
    ) -> None:
        if num_sweeps <= 0:
            raise ConfigurationError(f"num_sweeps must be positive, got {num_sweeps}")
        if final_temperature <= 0:
            raise ConfigurationError(
                f"final_temperature must be positive, got {final_temperature}"
            )
        if initial_temperature is not None and initial_temperature <= 0:
            raise ConfigurationError(
                f"initial_temperature must be positive, got {initial_temperature}"
            )
        self.num_sweeps = int(num_sweeps)
        self.initial_temperature = initial_temperature
        self.final_temperature = float(final_temperature)
        self.initial_state = (
            np.asarray(initial_state, dtype=np.int8).copy() if initial_state is not None else None
        )
        self.time_per_sweep_us = float(time_per_sweep_us)

    def _temperature_schedule(self, qubo: QUBOModel) -> np.ndarray:
        start = self.initial_temperature
        if start is None:
            start = max(qubo.max_abs_coefficient(), 1.0)
        if start < self.final_temperature:
            start = self.final_temperature
        return np.geomspace(start, self.final_temperature, self.num_sweeps)

    def solve(self, qubo: QUBOModel, rng: RandomState = None) -> QuboSolution:
        """Anneal once and return the best assignment seen over all sweeps."""
        generator = ensure_rng(rng)
        n = qubo.num_variables
        if n == 0:
            return QuboSolution(
                assignment=np.zeros(0, dtype=np.int8),
                energy=qubo.offset,
                solver_name=self.name,
            )

        if self.initial_state is not None:
            if self.initial_state.size != n:
                raise ConfigurationError(
                    f"initial_state has {self.initial_state.size} bits, expected {n}"
                )
            state = self.initial_state.copy()
        else:
            state = generator.integers(0, 2, size=n, dtype=np.int8)

        energy = qubo.energy(state)
        best_state = state.copy()
        best_energy = energy

        temperatures = self._temperature_schedule(qubo)
        for temperature in temperatures:
            order = generator.permutation(n)
            for index in order:
                delta = qubo.energy_delta_flip(state, int(index))
                if delta <= 0 or generator.random() < np.exp(-delta / temperature):
                    state[index] = 1 - state[index]
                    energy += delta
                    if energy < best_energy:
                        best_energy = energy
                        best_state = state.copy()

        return QuboSolution(
            assignment=best_state,
            energy=float(best_energy),
            solver_name=self.name,
            compute_time_us=self.time_per_sweep_us * self.num_sweeps,
            iterations=self.num_sweeps,
            metadata={
                "final_temperature": float(temperatures[-1]),
                "initial_temperature": float(temperatures[0]),
            },
        )
