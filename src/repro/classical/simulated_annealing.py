"""Classical simulated annealing over QUBO assignments.

Simulated annealing (SA) is the conventional classical baseline for
QUBO/Ising heuristics and one of the "classical approximate solvers" the
paper's conclusion lists as candidates for richer hybrid designs.  The solver
converts each QUBO to Ising form and runs the shared replica-parallel
single-flip Metropolis kernel of :mod:`repro.annealing.kernels` — the same
array program that powers the anneal backends — under a geometric temperature
schedule, tracking the best state seen over all sweeps with exact incremental
energy bookkeeping.

Both the single-instance :meth:`SimulatedAnnealingSolver.solve` and the
batched :meth:`SimulatedAnnealingSolver.solve_batch` run the same kernel: the
single path is literally a batch of one, so a batched solve over per-instance
child generators is bitwise-identical to the sequential loop regardless of
how instances are grouped.  ``REPRO_KERNEL=legacy`` selects the
pre-kernel-rewrite bit-space sweep loop instead, reproducing historical
results bit for bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.annealing import kernels
from repro.classical.base import QuboSolution, QuboSolver
from repro.exceptions import ConfigurationError
from repro.qubo.ising import qubo_to_ising
from repro.qubo.model import QUBOModel
from repro.utils.rng import BatchRandomState, RandomState, ensure_rng, ensure_rng_batch

__all__ = ["SimulatedAnnealingSolver"]


class SimulatedAnnealingSolver(QuboSolver):
    """Single-flip Metropolis simulated annealing.

    Parameters
    ----------
    num_sweeps:
        Number of full sweeps (each sweep proposes one flip per variable).
    initial_temperature / final_temperature:
        End points of the geometric cooling schedule, in energy units.  If
        ``initial_temperature`` is ``None`` it is auto-scaled to the model's
        largest absolute coefficient so acceptance starts near 1.
    initial_state:
        Optional starting assignment (defaults to uniformly random), allowing
        SA to be used as a refinement stage like RA.
    time_per_sweep_us:
        Modelled compute time charged per sweep for pipeline accounting.
    """

    name = "simulated-annealing"

    def __init__(
        self,
        num_sweeps: int = 200,
        initial_temperature: Optional[float] = None,
        final_temperature: float = 0.01,
        initial_state: Optional[Sequence[int]] = None,
        time_per_sweep_us: float = 0.1,
    ) -> None:
        if num_sweeps <= 0:
            raise ConfigurationError(f"num_sweeps must be positive, got {num_sweeps}")
        if final_temperature <= 0:
            raise ConfigurationError(
                f"final_temperature must be positive, got {final_temperature}"
            )
        if initial_temperature is not None and initial_temperature <= 0:
            raise ConfigurationError(
                f"initial_temperature must be positive, got {initial_temperature}"
            )
        self.num_sweeps = int(num_sweeps)
        self.initial_temperature = initial_temperature
        self.final_temperature = float(final_temperature)
        self.initial_state = (
            np.asarray(initial_state, dtype=np.int8).copy() if initial_state is not None else None
        )
        self.time_per_sweep_us = float(time_per_sweep_us)

    def _temperature_schedule(self, qubo: QUBOModel) -> np.ndarray:
        start = self.initial_temperature
        if start is None:
            start = max(qubo.max_abs_coefficient(), 1.0)
        if start < self.final_temperature:
            start = self.final_temperature
        return np.geomspace(start, self.final_temperature, self.num_sweeps)

    def solve(self, qubo: QUBOModel, rng: RandomState = None) -> QuboSolution:
        """Anneal once and return the best assignment seen over all sweeps."""
        return self._anneal_batch([qubo], [ensure_rng(rng)])[0]

    def solve_batch(
        self, qubos: Sequence[QUBOModel], rng: BatchRandomState = None
    ) -> List[QuboSolution]:
        """Anneal a batch of independent QUBOs as one vectorised computation.

        All instances sweep in lock-step over a common padded size; instance
        ``b`` draws exclusively from per-instance child generator ``b``, so
        the result list is bitwise-identical to calling :meth:`solve` once per
        instance with those children.
        """
        return self._anneal_batch(list(qubos), ensure_rng_batch(rng, len(qubos)))

    def _initial_bits(self, qubo_size: int, child: np.random.Generator) -> np.ndarray:
        if self.initial_state is not None:
            if self.initial_state.size != qubo_size:
                raise ConfigurationError(
                    f"initial_state has {self.initial_state.size} bits, expected {qubo_size}"
                )
            return self.initial_state
        return child.integers(0, 2, size=qubo_size, dtype=np.int8)

    def _anneal_batch(
        self, qubos: List[QUBOModel], children: List[np.random.Generator]
    ) -> List[QuboSolution]:
        kernel = kernels.active_kernel_name()
        if kernel == "legacy":
            return self._anneal_batch_legacy(qubos, children)

        batch = len(qubos)
        if batch == 0:
            return []
        sizes = np.array([qubo.num_variables for qubo in qubos], dtype=int)
        max_size = int(sizes.max()) if batch else 0
        temperatures = np.stack(
            [self._temperature_schedule(qubo) for qubo in qubos]
        )  # (B, num_sweeps)

        if max_size == 0:
            return [self._empty_solution(qubo) for qubo in qubos]

        # Ising-space replica state, one read per instance: spins (B, N, 1)
        # with trailing padding lanes frozen at +1 by the kernel mask.
        state = np.ones((batch, max_size, 1))
        padded_fields = np.zeros((batch, max_size))
        symmetric = np.zeros((batch, max_size, max_size))
        mask = np.zeros((batch, max_size), dtype=bool)
        for index, qubo in enumerate(qubos):
            n = int(sizes[index])
            if n == 0:
                continue
            bits = self._initial_bits(n, children[index])
            state[index, :n, 0] = bits.astype(float) * 2.0 - 1.0
            ising = qubo_to_ising(qubo)
            padded_fields[index, :n] = ising.fields
            symmetric[index, :n, :n] = ising.couplings + ising.couplings.T
            mask[index, :n] = True

        local = kernels.initial_local_fields(padded_fields, symmetric, state)
        # Bare Ising energies E = h.s + 1/2 s.J.s = (s.local + s.h) / 2;
        # the kernel advances them exactly and keeps per-read minima.
        energies = 0.5 * (
            np.einsum("bnr,bnr->br", state, local)
            + np.einsum("bnr,bn->br", state, padded_fields)
        )
        best_state = state.copy()
        best_energies = energies.copy()

        settings = [
            (1.0, 0.0, temperatures[:, sweep], 1.0) for sweep in range(self.num_sweeps)
        ]
        # Classical SA runs one read per instance at full activity, so its
        # parallelism comes from the batch axis, not replicas.  Dense MIMO
        # QUBOs oscillate under whole-chunk synchronous flips (strongly
        # coupled pairs flip together on stale fields and never settle), so
        # update one spin per chunk: sequential fixed-order Metropolis, the
        # textbook dynamics, still vectorised across instances.
        kernels.sa_sweeps(
            state,
            local,
            symmetric,
            mask,
            sizes,
            children,
            settings,
            implementation=kernel,
            spins_per_step=1,
            energies=energies,
            best_spins=best_state,
            best_energies=best_energies,
        )

        solutions = []
        for index, qubo in enumerate(qubos):
            n = int(sizes[index])
            if n == 0:
                solutions.append(self._empty_solution(qubo))
                continue
            bits = ((best_state[index, :n, 0] + 1.0) / 2.0).astype(np.int8)
            solutions.append(
                QuboSolution(
                    assignment=bits,
                    # Recomputed from scratch so the reported value is exact
                    # (the tracked Ising energies drop the constant offset).
                    energy=float(qubo.energy(bits)),
                    solver_name=self.name,
                    compute_time_us=self.time_per_sweep_us * self.num_sweeps,
                    iterations=self.num_sweeps,
                    metadata={
                        "final_temperature": float(temperatures[index, -1]),
                        "initial_temperature": float(temperatures[index, 0]),
                    },
                )
            )
        return solutions

    def _empty_solution(self, qubo: QUBOModel) -> QuboSolution:
        return QuboSolution(
            assignment=np.zeros(0, dtype=np.int8),
            energy=qubo.offset,
            solver_name=self.name,
        )

    def _anneal_batch_legacy(
        self, qubos: List[QUBOModel], children: List[np.random.Generator]
    ) -> List[QuboSolution]:
        """Pre-kernel-rewrite bit-space sweep loop (``REPRO_KERNEL=legacy``).

        Preserved bit for bit: random per-sweep visit orders, one uniform per
        bit, and sequential per-position vectorised Metropolis updates in
        QUBO bit space.
        """
        batch = len(qubos)
        if batch == 0:
            return []
        sizes = np.array([qubo.num_variables for qubo in qubos], dtype=int)
        max_size = int(sizes.max())

        temperatures = np.stack(
            [self._temperature_schedule(qubo) for qubo in qubos]
        )  # (B, num_sweeps)

        # Per-instance incremental state: local[b, i] is the energy change of
        # setting bit i of instance b to 1 given the other bits.
        states = np.zeros((batch, max_size), dtype=np.int8)
        linear = np.zeros((batch, max_size))
        interaction = np.zeros((batch, max_size, max_size))
        local = np.zeros((batch, max_size))
        energies = np.zeros(batch)
        for index, qubo in enumerate(qubos):
            n = int(sizes[index])
            if n == 0:
                energies[index] = qubo.offset
                continue
            states[index, :n] = self._initial_bits(n, children[index])
            matrix = qubo.coefficients
            linear[index, :n] = np.diagonal(matrix)
            symmetric = matrix + matrix.T
            np.fill_diagonal(symmetric, 0.0)
            interaction[index, :n, :n] = symmetric
            local[index, :n] = linear[index, :n] + symmetric @ states[index, :n].astype(float)
            energies[index] = qubo.energy(states[index, :n])

        best_states = states.copy()
        best_energies = energies.copy()
        lanes = np.arange(batch)

        for sweep in range(self.num_sweeps):
            sweep_temperatures = temperatures[:, sweep]
            orders = np.zeros((batch, max_size), dtype=int)
            uniforms = np.ones((batch, max_size))
            for index in range(batch):
                n = int(sizes[index])
                if n == 0:
                    continue
                orders[index, :n] = children[index].permutation(n)
                uniforms[index, :n] = children[index].random(n)
            for position in range(max_size):
                active = position < sizes
                if not np.any(active):
                    break
                index = orders[:, position]
                current = states[lanes, index]
                # Flipping bit i changes the energy by +local[i] (0 -> 1) or
                # -local[i] (1 -> 0).
                delta = np.where(current == 0, local[lanes, index], -local[lanes, index])
                # The clip only touches lanes already accepted downhill, and
                # keeps exp() from overflowing on strongly uphill proposals.
                accept = (delta <= 0) | (
                    uniforms[:, position]
                    < np.exp(-np.clip(delta, 0.0, None) / sweep_temperatures)
                )
                accept &= active
                touched = np.nonzero(accept)[0]
                if touched.size == 0:
                    continue
                flipped_bits = 1 - current[touched]
                states[touched, index[touched]] = flipped_bits
                direction = (flipped_bits * 2 - 1).astype(float)
                local[touched] += direction[:, None] * interaction[touched, :, index[touched]]
                energies[touched] += delta[touched]
                improved = touched[energies[touched] < best_energies[touched]]
                if improved.size:
                    best_energies[improved] = energies[improved]
                    best_states[improved] = states[improved]

        return [
            QuboSolution(
                assignment=best_states[index, : int(sizes[index])].copy(),
                energy=float(best_energies[index]),
                solver_name=self.name,
                compute_time_us=self.time_per_sweep_us * self.num_sweeps,
                iterations=self.num_sweeps,
                metadata={
                    "final_temperature": float(temperatures[index, -1]),
                    "initial_temperature": float(temperatures[index, 0]),
                },
            )
            if sizes[index]
            else self._empty_solution(qubos[index])
            for index in range(batch)
        ]
