"""Linear minimum mean-square error (MMSE) MIMO detection.

The MMSE detector regularises the channel inversion with the noise variance,
trading a small bias for much better robustness than zero-forcing when the
channel is ill-conditioned.  In the paper's noiseless protocol it coincides
with zero-forcing (regularisation 0), but the extension benchmarks that sweep
SNR use it as the stronger linear baseline and as an RA initialiser.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.classical.base import MIMODetector
from repro.classical.zero_forcing import ZeroForcingDetector
from repro.exceptions import SolverError
from repro.wireless.mimo import MIMOInstance

__all__ = ["MMSEDetector"]


class MMSEDetector(MIMODetector):
    """MMSE equalisation followed by nearest-point quantisation.

    Parameters
    ----------
    noise_variance:
        Complex noise variance used in the regularisation term.  ``None``
        (default) lets :meth:`detect` fall back to zero regularisation, i.e.
        zero-forcing behaviour, which matches the paper's noiseless protocol.
    """

    name = "mmse"

    def __init__(self, noise_variance: Optional[float] = None) -> None:
        if noise_variance is not None and noise_variance < 0:
            raise SolverError(f"noise_variance must be non-negative, got {noise_variance}")
        self.noise_variance = noise_variance

    def detect(self, instance: MIMOInstance, noise_variance: Optional[float] = None) -> np.ndarray:
        """Return hard symbol decisions for every user.

        ``noise_variance`` overrides the constructor value for this call.
        """
        variance = noise_variance if noise_variance is not None else self.noise_variance
        if variance is None:
            variance = 0.0
        if variance < 0:
            raise SolverError(f"noise_variance must be non-negative, got {variance}")

        channel = instance.channel_matrix
        num_users = channel.shape[1]
        gram = np.conjugate(channel.T) @ channel
        signal_energy = instance.modulation_scheme.average_energy()
        regulariser = (variance / signal_energy) * np.eye(num_users)
        try:
            filter_matrix = np.linalg.solve(gram + regulariser, np.conjugate(channel.T))
        except np.linalg.LinAlgError:
            # Singular Gram matrix with zero regularisation: fall back to the
            # pseudo-inverse, which handles the rank-deficient case.
            filter_matrix = np.linalg.pinv(channel)

        soft_symbols = filter_matrix @ instance.received
        return ZeroForcingDetector.quantise(instance, soft_symbols)

    def soft_estimate(
        self, instance: MIMOInstance, noise_variance: Optional[float] = None
    ) -> np.ndarray:
        """Return the unquantised MMSE symbol estimates."""
        variance = noise_variance if noise_variance is not None else (self.noise_variance or 0.0)
        channel = instance.channel_matrix
        num_users = channel.shape[1]
        gram = np.conjugate(channel.T) @ channel
        signal_energy = instance.modulation_scheme.average_energy()
        regulariser = (variance / signal_energy) * np.eye(num_users)
        try:
            filter_matrix = np.linalg.solve(gram + regulariser, np.conjugate(channel.T))
        except np.linalg.LinAlgError:
            filter_matrix = np.linalg.pinv(channel)
        return filter_matrix @ instance.received
