"""Solver interfaces shared by the classical stack.

The hybrid architecture (paper Figure 1) composes *classical processing
units* with *quantum processing units*.  Classical QUBO solvers implement the
:class:`QuboSolver` interface and return :class:`QuboSolution` objects, which
record not just the bitstring and energy but also the compute time the
pipeline simulator charges for the classical stage.  Classical MIMO detectors
that work in the signal domain (zero-forcing, MMSE, sphere decoders) implement
:class:`MIMODetector`; the hybrid solver bridges them into QUBO initial states
through the encoding's ``symbols_to_bits``.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.qubo.model import QUBOModel
from repro.utils.rng import BatchRandomState, RandomState
from repro.wireless.mimo import MIMOInstance

__all__ = ["QuboSolution", "QuboSolver", "MIMODetector", "timed_call"]


@dataclass(frozen=True)
class QuboSolution:
    """Result of running a classical QUBO solver once.

    Attributes
    ----------
    assignment:
        The best 0/1 assignment found.
    energy:
        Its QUBO energy (including the model offset).
    solver_name:
        Which algorithm produced it.
    compute_time_us:
        Modelled (or measured) compute time in microseconds; the pipeline
        simulator uses this for stage latency accounting.
    iterations:
        Number of elementary iterations/sweeps the solver performed.
    metadata:
        Free-form extras (e.g. restart statistics).
    """

    assignment: np.ndarray
    energy: float
    solver_name: str
    compute_time_us: float = 0.0
    iterations: int = 0
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        assignment = np.asarray(self.assignment, dtype=np.int8).ravel()
        object.__setattr__(self, "assignment", assignment)

    @property
    def num_variables(self) -> int:
        """Length of the assignment."""
        return int(self.assignment.size)


class QuboSolver(abc.ABC):
    """Abstract classical QUBO solver."""

    #: Human-readable solver name used in results and reports.
    name: str = "qubo-solver"

    @abc.abstractmethod
    def solve(self, qubo: QUBOModel, rng: RandomState = None) -> QuboSolution:
        """Minimise the QUBO and return the best solution found."""

    def solve_many(self, qubo: QUBOModel, count: int, rng: RandomState = None) -> list:
        """Run the solver ``count`` times (used for restart-style statistics)."""
        from repro.utils.rng import spawn_rngs

        return [self.solve(qubo, child) for child in spawn_rngs(rng, count)]

    def solve_batch(self, qubos: Sequence[QUBOModel], rng: BatchRandomState = None) -> list:
        """Solve a batch of *independent* QUBO instances.

        ``rng`` is a root seed (spawned into one child generator per instance
        via :func:`repro.utils.rng.ensure_rng_batch`) or an explicit sequence
        of per-instance generators.  Instance ``b`` consumes randomness only
        from child ``b``, so results do not depend on how a workload is split
        into batches, and a batch of one is bitwise-identical to
        :meth:`solve` with the same child generator.

        This default implementation is the sequential loop; solvers with a
        vectorised multi-instance kernel (e.g.
        :class:`repro.classical.SimulatedAnnealingSolver`) override it while
        preserving the same contract.
        """
        from repro.utils.rng import ensure_rng_batch

        children = ensure_rng_batch(rng, len(qubos))
        return [self.solve(qubo, child) for qubo, child in zip(qubos, children)]


class MIMODetector(abc.ABC):
    """Abstract signal-domain MIMO detector."""

    #: Human-readable detector name.
    name: str = "mimo-detector"

    @abc.abstractmethod
    def detect(self, instance: MIMOInstance) -> np.ndarray:
        """Return the detected symbol vector (hard decisions on the constellation)."""


def timed_call(function, *args, **kwargs):
    """Call a function and return ``(result, elapsed_microseconds)``.

    Used by solvers that report *measured* rather than modelled compute time.
    """
    start = time.perf_counter()
    result = function(*args, **kwargs)
    elapsed_us = (time.perf_counter() - start) * 1e6
    return result, elapsed_us
