"""Zero-forcing (ZF) linear MIMO detection.

Zero-forcing inverts the channel with its Moore-Penrose pseudo-inverse and
quantises each resulting soft symbol to the nearest constellation point.  The
paper's conclusion identifies ZF as a "linear solver" candidate for
initialising reverse annealing: it typically achieves a better initial-state
quality ΔE_IS% than greedy search at the cost of a matrix inversion.
"""

from __future__ import annotations

import numpy as np

from repro.classical.base import MIMODetector
from repro.exceptions import SolverError
from repro.wireless.mimo import MIMOInstance

__all__ = ["ZeroForcingDetector"]


class ZeroForcingDetector(MIMODetector):
    """Pseudo-inverse equalisation followed by nearest-point quantisation."""

    name = "zero-forcing"

    def detect(self, instance: MIMOInstance) -> np.ndarray:
        """Return hard symbol decisions for every user."""
        channel = instance.channel_matrix
        if channel.shape[0] < channel.shape[1]:
            raise SolverError(
                "zero-forcing requires at least as many receive antennas as users "
                f"(got {channel.shape[0]} x {channel.shape[1]})"
            )
        try:
            pseudo_inverse = np.linalg.pinv(channel)
        except np.linalg.LinAlgError as error:  # pragma: no cover - numpy rarely fails here
            raise SolverError(f"pseudo-inverse failed: {error}") from error

        soft_symbols = pseudo_inverse @ instance.received
        return self.quantise(instance, soft_symbols)

    def soft_estimate(self, instance: MIMOInstance) -> np.ndarray:
        """Return the unquantised equalised symbols (useful for soft information)."""
        pseudo_inverse = np.linalg.pinv(instance.channel_matrix)
        return pseudo_inverse @ instance.received

    @staticmethod
    def quantise(instance: MIMOInstance, soft_symbols: np.ndarray) -> np.ndarray:
        """Quantise soft symbol estimates to the nearest constellation points."""
        modulation = instance.modulation_scheme
        points = modulation.points
        soft_symbols = np.asarray(soft_symbols, dtype=complex).ravel()
        indices = np.argmin(np.abs(soft_symbols[:, None] - points[None, :]), axis=1)
        return points[indices]
