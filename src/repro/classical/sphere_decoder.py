"""Tree-search MIMO detectors: fixed-complexity and K-best sphere decoding.

The paper's conclusion names FCSD (Barbero & Thompson) and the K-best sphere
decoder (Guo & Nilsson) as "tree search-based solvers" with tunable
complexity that could initialise reverse annealing with controllable quality.

Both detectors work on the QR decomposition of the channel: with ``H = Q R``
and ``z = Q^H y`` the objective ``||y - H x||^2`` decomposes level by level
over users detected in reverse order, because ``R`` is upper triangular.

* :class:`KBestSphereDecoder` performs breadth-first search keeping the ``K``
  best partial candidates per level.
* :class:`FixedComplexitySphereDecoder` fully expands the first
  ``full_expansion_levels`` detected users and continues each branch with
  successive-interference-cancellation (single best child) for the rest, so
  its complexity is fixed at ``M ** full_expansion_levels`` leaf candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.classical.base import MIMODetector
from repro.exceptions import ConfigurationError, SolverError
from repro.wireless.mimo import MIMOInstance

__all__ = ["KBestSphereDecoder", "FixedComplexitySphereDecoder"]


@dataclass
class _PartialPath:
    """A partial candidate in the detection tree (symbols chosen so far)."""

    symbols: Tuple[complex, ...]
    metric: float


def _qr_preprocess(instance: MIMOInstance) -> Tuple[np.ndarray, np.ndarray]:
    """Return (R, z) from the thin QR decomposition of the channel."""
    channel = instance.channel_matrix
    if channel.shape[0] < channel.shape[1]:
        raise SolverError(
            "sphere decoding requires at least as many receive antennas as users "
            f"(got {channel.shape[0]} x {channel.shape[1]})"
        )
    q_matrix, r_matrix = np.linalg.qr(channel)
    z_vector = np.conjugate(q_matrix.T) @ instance.received
    return r_matrix, z_vector


def _level_metric(
    r_matrix: np.ndarray,
    z_vector: np.ndarray,
    level: int,
    num_users: int,
    chosen: Tuple[complex, ...],
    candidate: complex,
) -> float:
    """Incremental metric for assigning ``candidate`` to user ``level``.

    ``chosen`` holds the symbols of users ``level+1 .. num_users-1`` in
    detection order (most recently detected first).
    """
    residual = z_vector[level] - r_matrix[level, level] * candidate
    for offset, symbol in enumerate(chosen):
        column = level + 1 + offset
        residual -= r_matrix[level, column] * symbol
    return float(np.abs(residual) ** 2)


class KBestSphereDecoder(MIMODetector):
    """Breadth-first K-best sphere decoding.

    Parameters
    ----------
    k_best:
        Number of partial candidates retained per detection level.  ``K`` of
        at least the constellation order makes the first level exact; larger
        values approach full ML at higher cost.
    """

    name = "k-best-sphere-decoder"

    def __init__(self, k_best: int = 8) -> None:
        if k_best <= 0:
            raise ConfigurationError(f"k_best must be positive, got {k_best}")
        self.k_best = int(k_best)

    def detect(self, instance: MIMOInstance) -> np.ndarray:
        """Return hard symbol decisions for every user."""
        r_matrix, z_vector = _qr_preprocess(instance)
        points = instance.modulation_scheme.points
        num_users = instance.num_users

        paths: List[_PartialPath] = [_PartialPath(symbols=(), metric=0.0)]
        for level in range(num_users - 1, -1, -1):
            expanded: List[_PartialPath] = []
            for path in paths:
                for candidate in points:
                    metric = path.metric + _level_metric(
                        r_matrix, z_vector, level, num_users, path.symbols, candidate
                    )
                    expanded.append(
                        _PartialPath(symbols=(candidate,) + path.symbols, metric=metric)
                    )
            expanded.sort(key=lambda item: item.metric)
            paths = expanded[: self.k_best]

        best = paths[0]
        return np.asarray(best.symbols, dtype=complex)


class FixedComplexitySphereDecoder(MIMODetector):
    """Fixed-complexity sphere decoder (FCSD).

    Parameters
    ----------
    full_expansion_levels:
        Number of users (detected first) whose symbols are fully enumerated;
        the remaining users are detected by per-branch successive interference
        cancellation.  ``1`` is the classic FCSD-rho=1 configuration; setting
        it to the number of users recovers exact ML at exponential cost.
    """

    name = "fcsd"

    def __init__(self, full_expansion_levels: int = 1) -> None:
        if full_expansion_levels < 0:
            raise ConfigurationError(
                f"full_expansion_levels must be non-negative, got {full_expansion_levels}"
            )
        self.full_expansion_levels = int(full_expansion_levels)

    def detect(self, instance: MIMOInstance) -> np.ndarray:
        """Return hard symbol decisions for every user."""
        r_matrix, z_vector = _qr_preprocess(instance)
        points = instance.modulation_scheme.points
        num_users = instance.num_users
        full_levels = min(self.full_expansion_levels, num_users)

        paths: List[_PartialPath] = [_PartialPath(symbols=(), metric=0.0)]
        for depth, level in enumerate(range(num_users - 1, -1, -1)):
            expanded: List[_PartialPath] = []
            for path in paths:
                if depth < full_levels:
                    candidates = points
                else:
                    # Successive interference cancellation: keep only the
                    # single best child of this branch.
                    metrics = [
                        _level_metric(r_matrix, z_vector, level, num_users, path.symbols, candidate)
                        for candidate in points
                    ]
                    candidates = [points[int(np.argmin(metrics))]]
                for candidate in candidates:
                    metric = path.metric + _level_metric(
                        r_matrix, z_vector, level, num_users, path.symbols, candidate
                    )
                    expanded.append(
                        _PartialPath(symbols=(candidate,) + path.symbols, metric=metric)
                    )
            paths = expanded

        best = min(paths, key=lambda item: item.metric)
        return np.asarray(best.symbols, dtype=complex)

    def candidate_count(self, instance: MIMOInstance) -> int:
        """Number of leaf candidates the decoder evaluates for this instance."""
        order = instance.modulation_scheme.order
        full_levels = min(self.full_expansion_levels, instance.num_users)
        return order ** full_levels
