"""Classical solvers: QUBO heuristics and conventional MIMO detectors.

Two families live here:

* **QUBO-domain solvers** operating on :class:`repro.qubo.QUBOModel`:
  the paper's Greedy Search (:class:`GreedySearchSolver`), an exhaustive
  solver for ground truth, simulated annealing, and tabu search.  All share
  the :class:`QuboSolver` interface and return :class:`QuboSolution` objects.

* **Signal-domain MIMO detectors** operating directly on the channel matrix:
  zero-forcing, MMSE, the fixed-complexity sphere decoder (FCSD) and the
  K-best sphere decoder — the "application-specific classical solvers" the
  paper's Section 5 proposes as richer initialisers for reverse annealing.
"""

from repro.classical.base import QuboSolver, QuboSolution, MIMODetector
from repro.classical.greedy import GreedySearchSolver, greedy_search
from repro.classical.exhaustive import ExhaustiveSolver
from repro.classical.simulated_annealing import SimulatedAnnealingSolver
from repro.classical.tabu import TabuSearchSolver
from repro.classical.zero_forcing import ZeroForcingDetector
from repro.classical.mmse import MMSEDetector
from repro.classical.sphere_decoder import FixedComplexitySphereDecoder, KBestSphereDecoder

__all__ = [
    "QuboSolver",
    "QuboSolution",
    "MIMODetector",
    "GreedySearchSolver",
    "greedy_search",
    "ExhaustiveSolver",
    "SimulatedAnnealingSolver",
    "TabuSearchSolver",
    "ZeroForcingDetector",
    "MMSEDetector",
    "FixedComplexitySphereDecoder",
    "KBestSphereDecoder",
]
