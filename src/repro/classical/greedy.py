"""Greedy Search (GS): the paper's classical module (Sec. 4.1).

GS is "a very simple deterministic QUBO solver featuring linear complexity":

1. Every bit is scored by the magnitude of its mean-field coefficient
   ``|1/2 Q_ii + 1/4 sum_{k<i} Q_ki + 1/4 sum_{k>i} Q_ik|`` — equivalently the
   magnitude of the Ising local field h_i of the model.
2. The first bit fixed is the one with the largest-magnitude score; it is
   assigned 0 if the signed score is positive and 1 otherwise.
3. "The procedure is iterated recursively on the remaining variables": after
   each assignment the marginal energies of the unset bits are re-evaluated
   against the bits already fixed, and the next bit fixed is again the one
   whose marginal has the largest magnitude, assigned the value that minimises
   the partial QUBO energy.  (Static one-shot orderings are available as
   ablation variants via the ``order`` parameter.)

The solution is usually not the global optimum but is a good, essentially free
initial state for reverse annealing — which is exactly how the paper's hybrid
prototype uses it.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.classical.base import QuboSolution, QuboSolver, timed_call
from repro.exceptions import ConfigurationError
from repro.qubo.model import QUBOModel
from repro.utils.rng import BatchRandomState, RandomState

__all__ = ["GreedySearchSolver", "greedy_search", "greedy_field_scores"]


def greedy_field_scores(qubo: QUBOModel) -> np.ndarray:
    """The signed per-bit scores ``1/2 Q_ii + 1/4 (sum_k<i Q_ki + sum_k>i Q_ik)``.

    These equal the Ising local fields of the model (up to the exact constant
    conventions), which is why the paper describes the sort as being "by the
    absolute magnitude of the matrix's diagonal elements in the Ising model".
    """
    matrix = qubo.coefficients
    n = qubo.num_variables
    scores = np.empty(n)
    for i in range(n):
        column_above = matrix[:i, i].sum()
        row_right = matrix[i, i + 1 :].sum()
        scores[i] = 0.5 * matrix[i, i] + 0.25 * (column_above + row_right)
    return scores


def greedy_search(qubo: QUBOModel, order: str = "adaptive") -> np.ndarray:
    """Run the paper's greedy search and return the 0/1 assignment.

    Parameters
    ----------
    qubo:
        Model to minimise.
    order:
        * ``"adaptive"`` (default) — re-evaluate every unset bit's marginal
          energy after each assignment and always fix the bit whose marginal
          has the largest magnitude next.  This is the recursive reading of
          the paper's description ("the procedure is iterated recursively on
          the remaining variables") and is the variant that reproduces the
          paper's observation that GS solutions typically score ΔE_IS% <= 10%.
        * ``"ascending"`` / ``"descending"`` — fix the visiting order up front
          by sorting the static field scores once (ablation variants).
    """
    if order not in ("adaptive", "ascending", "descending"):
        raise ConfigurationError(
            f"order must be 'adaptive', 'ascending' or 'descending', got {order!r}"
        )

    n = qubo.num_variables
    assignment = np.zeros(n, dtype=np.int8)
    if n == 0:
        return assignment

    matrix = qubo.coefficients

    if order == "adaptive":
        # marginal[i] = energy change of setting q_i = 1 given the bits fixed
        # to 1 so far (couplings to bits fixed to 0 contribute nothing).
        marginal = np.diagonal(matrix).astype(float).copy()
        assigned = np.zeros(n, dtype=bool)
        for _ in range(n):
            remaining = np.where(~assigned)[0]
            index = int(remaining[np.argmax(np.abs(marginal[remaining]))])
            value = 1 if marginal[index] < 0 else 0
            assignment[index] = value
            assigned[index] = True
            if value == 1:
                for other in np.where(~assigned)[0]:
                    low, high = (index, other) if index < other else (other, index)
                    marginal[other] += matrix[low, high]
        return assignment

    scores = greedy_field_scores(qubo)
    visit_order = np.argsort(np.abs(scores), kind="stable")
    if order == "descending":
        visit_order = visit_order[::-1]

    assigned = np.zeros(n, dtype=bool)

    first = int(visit_order[0])
    assignment[first] = 0 if scores[first] > 0 else 1
    assigned[first] = True

    for position in range(1, n):
        index = int(visit_order[position])
        # Marginal energy of setting q_index = 1 given the already-set bits:
        # its linear term plus couplings to set bits that are 1.
        marginal = matrix[index, index]
        set_ones = np.where(assigned & (assignment == 1))[0]
        for other in set_ones:
            low, high = (index, other) if index < other else (other, index)
            marginal += matrix[low, high]
        assignment[index] = 1 if marginal < 0 else 0
        assigned[index] = True

    return assignment


class GreedySearchSolver(QuboSolver):
    """The paper's Greedy Search packaged behind the :class:`QuboSolver` API.

    Parameters
    ----------
    order:
        Bit visiting order; see :func:`greedy_search`.
    modelled_time_per_variable_us:
        The pipeline simulator charges GS a deterministic, linear-in-N compute
        time; the paper describes GS as requiring "nearly negligible
        computation time", and 0.01 us per variable keeps it far below the
        microsecond-scale anneal times while staying non-zero.
    """

    name = "greedy-search"

    def __init__(
        self, order: str = "adaptive", modelled_time_per_variable_us: float = 0.01
    ) -> None:
        if modelled_time_per_variable_us < 0:
            raise ConfigurationError(
                "modelled_time_per_variable_us must be non-negative, "
                f"got {modelled_time_per_variable_us}"
            )
        self.order = order
        self.modelled_time_per_variable_us = float(modelled_time_per_variable_us)

    def solve(self, qubo: QUBOModel, rng: RandomState = None) -> QuboSolution:
        """Run GS; the ``rng`` argument is accepted for interface uniformity."""
        assignment, measured_us = timed_call(greedy_search, qubo, self.order)
        modelled_us = self.modelled_time_per_variable_us * qubo.num_variables
        return QuboSolution(
            assignment=assignment,
            energy=qubo.energy(assignment),
            solver_name=self.name,
            compute_time_us=modelled_us,
            iterations=qubo.num_variables,
            metadata={"measured_wall_time_us": measured_us, "order": self.order},
        )

    def solve_batch(
        self, qubos: Sequence[QUBOModel], rng: BatchRandomState = None
    ) -> List[QuboSolution]:
        """Solve a batch of QUBOs; GS is deterministic so no children are spawned.

        One wall-clock measurement covers the whole batch (apportioned evenly
        into each solution's ``measured_wall_time_us``); the modelled compute
        time stays per-instance and linear in N, matching :meth:`solve`.
        """
        assignments, measured_us = timed_call(
            lambda: [greedy_search(qubo, self.order) for qubo in qubos]
        )
        per_instance_us = measured_us / max(len(qubos), 1)
        return [
            QuboSolution(
                assignment=assignment,
                energy=qubo.energy(assignment),
                solver_name=self.name,
                compute_time_us=self.modelled_time_per_variable_us * qubo.num_variables,
                iterations=qubo.num_variables,
                metadata={"measured_wall_time_us": per_instance_us, "order": self.order},
            )
            for qubo, assignment in zip(qubos, assignments)
        ]
