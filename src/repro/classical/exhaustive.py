"""Exhaustive (brute-force) QUBO solver.

Used to establish the exact ground-state energy E_g that every paper metric
(ΔE%, success probability, TTS) is defined against.  For the instance sizes
the paper studies this is feasible; the solver refuses to enumerate beyond a
configurable variable-count guard.
"""

from __future__ import annotations

from repro.classical.base import QuboSolution, QuboSolver, timed_call
from repro.qubo.energy import brute_force_minimum
from repro.qubo.model import QUBOModel
from repro.utils.rng import RandomState

__all__ = ["ExhaustiveSolver"]


class ExhaustiveSolver(QuboSolver):
    """Enumerate every assignment and return the exact optimum.

    Parameters
    ----------
    max_variables:
        Guard against accidental exponential blow-ups (default 28).
    """

    name = "exhaustive"

    def __init__(self, max_variables: int = 28) -> None:
        self.max_variables = int(max_variables)

    def solve(self, qubo: QUBOModel, rng: RandomState = None) -> QuboSolution:
        """Return the exact ground state (first one in enumeration order)."""
        result, measured_us = timed_call(brute_force_minimum, qubo, self.max_variables)
        return QuboSolution(
            assignment=result.assignment,
            energy=result.energy,
            solver_name=self.name,
            compute_time_us=measured_us,
            iterations=result.evaluated,
            metadata={
                "ground_state_count": result.ground_state_count,
                "evaluated": result.evaluated,
            },
        )
