"""Tabu search over QUBO assignments.

Tabu search is the classical component of D-Wave's commercial hybrid solver
service the paper cites in its related-work discussion, and a natural
candidate for the "application-specific classical solvers" of Section 5.  The
implementation is a standard single-flip best-improvement tabu search with an
aspiration criterion and optional random restarts.

Batch semantics: tabu search inherits the default
:meth:`~repro.classical.base.QuboSolver.solve_batch` — a sequential loop over
per-instance child generators — because its best-improvement move selection
(a full argmin per move) does not vectorise profitably across instances of
different sizes.  The per-instance child streams still make batched results
independent of batch composition.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.classical.base import QuboSolution, QuboSolver
from repro.exceptions import ConfigurationError
from repro.qubo.model import QUBOModel
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["TabuSearchSolver"]


class TabuSearchSolver(QuboSolver):
    """Best-improvement tabu search with aspiration.

    Parameters
    ----------
    max_iterations:
        Total number of single-flip moves per restart.
    tenure:
        Number of iterations a flipped variable stays tabu.  ``None`` selects
        ``max(5, N // 10)`` per restart.
    num_restarts:
        Independent random restarts; the best solution across restarts wins.
    initial_state:
        Optional starting assignment for the first restart.
    time_per_iteration_us:
        Modelled compute time per move for pipeline accounting.
    """

    name = "tabu-search"

    def __init__(
        self,
        max_iterations: int = 500,
        tenure: Optional[int] = None,
        num_restarts: int = 1,
        initial_state: Optional[Sequence[int]] = None,
        time_per_iteration_us: float = 0.05,
    ) -> None:
        if max_iterations <= 0:
            raise ConfigurationError(f"max_iterations must be positive, got {max_iterations}")
        if tenure is not None and tenure < 0:
            raise ConfigurationError(f"tenure must be non-negative, got {tenure}")
        if num_restarts <= 0:
            raise ConfigurationError(f"num_restarts must be positive, got {num_restarts}")
        self.max_iterations = int(max_iterations)
        self.tenure = tenure
        self.num_restarts = int(num_restarts)
        self.initial_state = (
            np.asarray(initial_state, dtype=np.int8).copy() if initial_state is not None else None
        )
        self.time_per_iteration_us = float(time_per_iteration_us)

    def solve(self, qubo: QUBOModel, rng: RandomState = None) -> QuboSolution:
        """Run tabu search (with restarts) and return the best solution found."""
        generator = ensure_rng(rng)
        n = qubo.num_variables
        if n == 0:
            return QuboSolution(
                assignment=np.zeros(0, dtype=np.int8),
                energy=qubo.offset,
                solver_name=self.name,
            )

        tenure = self.tenure if self.tenure is not None else max(5, n // 10)

        best_state: Optional[np.ndarray] = None
        best_energy = np.inf
        total_moves = 0

        for restart in range(self.num_restarts):
            if restart == 0 and self.initial_state is not None:
                if self.initial_state.size != n:
                    raise ConfigurationError(
                        f"initial_state has {self.initial_state.size} bits, expected {n}"
                    )
                state = self.initial_state.copy()
            else:
                state = generator.integers(0, 2, size=n, dtype=np.int8)
            energy = qubo.energy(state)
            local_best_energy = energy
            tabu_until = np.full(n, -1, dtype=np.int64)

            for iteration in range(self.max_iterations):
                total_moves += 1
                deltas = np.array(
                    [qubo.energy_delta_flip(state, index) for index in range(n)]
                )
                candidate_energies = energy + deltas
                allowed = (tabu_until < iteration) | (candidate_energies < best_energy - 1e-12)
                if not np.any(allowed):
                    allowed = np.ones(n, dtype=bool)
                masked = np.where(allowed, candidate_energies, np.inf)
                move = int(np.argmin(masked))
                state[move] = 1 - state[move]
                energy = float(candidate_energies[move])
                tabu_until[move] = iteration + tenure
                if energy < local_best_energy:
                    local_best_energy = energy
                if energy < best_energy:
                    best_energy = energy
                    best_state = state.copy()

            if best_state is None or local_best_energy < best_energy:
                best_energy = min(best_energy, local_best_energy)
                if best_state is None:
                    best_state = state.copy()

        assert best_state is not None
        return QuboSolution(
            assignment=best_state,
            energy=float(best_energy),
            solver_name=self.name,
            compute_time_us=self.time_per_iteration_us * total_moves,
            iterations=total_moves,
            metadata={"tenure": tenure, "num_restarts": self.num_restarts},
        )
