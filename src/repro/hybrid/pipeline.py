"""Pipelined classical/quantum processing of successive channel uses.

Paper Figure 2 sketches the eventual goal of the hybrid architecture: data
from successive wireless channel uses flow through *staged* classical and
quantum processing units, so that while the quantum stage refines channel use
N the classical stage is already pre-processing channel use N+1.  The paper
lists this as Design Challenge 3 (balancing, buffering, costs) but does not
quantify it; this module provides the discrete-event simulator the E-F2
benchmark uses to do so.

The simulator models each stage as a single FIFO server:

* the **classical stage** runs the chosen initialiser on each arriving channel
  use (service time = the initialiser's modelled compute time);
* the **quantum stage** runs reverse annealing programmed with that
  initialiser's output (service time = schedule duration x reads, plus the
  device's per-read readout/delay overheads when ``include_qpu_overheads``).

Running the same workload with ``pipelined=False`` serialises the two stages
onto a single server, which is the baseline Figure 2 is contrasted against.

Paper linkage
-------------
This module is the quantitative counterpart of paper **Figure 2** (the staged
classical/quantum pipeline) and of **Design Challenge 3** in Section 5
(stage balancing, buffering and cost accounting).  The batched engine extends
the figure's premise: not only do the classical and quantum stages overlap
across successive channel uses, but each stage also *processes channel uses
in batches* — the classical initialisers via
:meth:`~repro.classical.base.QuboSolver.solve_batch` and the anneals via
:meth:`~repro.annealing.QuantumAnnealerSimulator.sample_qubo_batch` — which
is how a receiver keeps many concurrent channel uses in flight.  Batch
grouping is a pure execution detail: per-channel-use child generators keep
the reported solutions identical for every ``batch_size``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.annealing.sampleset import SampleSet
from repro.annealing.schedule import reverse_anneal_schedule
from repro.classical.base import QuboSolver
from repro.classical.greedy import GreedySearchSolver
from repro.exceptions import PipelineError
from repro.serving.events import FifoServer, StageTiming
from repro.transform.mimo_to_qubo import is_optimum, mimo_to_qubo
from repro.utils.batching import iter_batches
from repro.utils.rng import BatchRandomState, ensure_rng_batch
from repro.wireless.traffic import ChannelUse

__all__ = [
    "StageTiming",
    "PipelineJobResult",
    "PipelineReport",
    "HybridPipelineSimulator",
]


@dataclass(frozen=True)
class PipelineJobResult:
    """Per-channel-use outcome of the pipeline simulation."""

    index: int
    arrival_us: float
    classical: StageTiming
    quantum: StageTiming
    completion_us: float
    latency_us: float
    deadline_us: Optional[float]
    met_deadline: Optional[bool]
    detected_optimum: Optional[bool]
    best_energy: float
    ground_energy: Optional[float]


@dataclass(frozen=True)
class PipelineReport:
    """Aggregate statistics of one pipeline simulation run."""

    jobs: List[PipelineJobResult]
    pipelined: bool
    makespan_us: float
    mean_latency_us: float
    p95_latency_us: float
    throughput_jobs_per_ms: float
    classical_utilization: float
    quantum_utilization: float
    deadline_miss_rate: Optional[float]
    optimum_rate: Optional[float]
    metadata: Dict = field(default_factory=dict)

    @property
    def num_jobs(self) -> int:
        """Number of channel uses processed."""
        return len(self.jobs)


class HybridPipelineSimulator:
    """Discrete-event simulation of the Figure-2 hybrid pipeline.

    Parameters
    ----------
    classical_solver:
        Initialiser run by the classical stage (defaults to Greedy Search).
    sampler:
        Annealer simulator used by the quantum stage.
    switch_s, pause_duration_us, num_reads:
        Reverse-annealing parameters of the quantum stage.
    include_qpu_overheads:
        When true the quantum stage's service time includes per-read readout
        and inter-sample delays from the device model (realistic); when false
        it counts pure anneal time only (the paper's TTS convention).
    evaluate_solutions:
        When true the annealer is actually run per channel use so solution
        quality can be reported; when false only the timing model is exercised
        (much faster — useful for long traffic traces).
    batch_size:
        How many channel uses are grouped into each batched solver/sampler
        submission.  ``None`` (the default) submits the whole trace as one
        batch — the fastest option; smaller values bound memory.  Per-job
        child generators make the reported solutions identical for every
        choice.
    """

    def __init__(
        self,
        classical_solver: Optional[QuboSolver] = None,
        sampler: Optional[QuantumAnnealerSimulator] = None,
        switch_s: float = 0.41,
        pause_duration_us: float = 1.0,
        num_reads: int = 50,
        include_qpu_overheads: bool = False,
        evaluate_solutions: bool = True,
        batch_size: Optional[int] = None,
    ) -> None:
        if not 0.0 < switch_s < 1.0:
            raise PipelineError(f"switch_s must lie strictly inside (0, 1), got {switch_s}")
        if num_reads <= 0:
            raise PipelineError(f"num_reads must be positive, got {num_reads}")
        if batch_size is not None and batch_size <= 0:
            raise PipelineError(f"batch_size must be positive or None, got {batch_size}")
        self.classical_solver = (
            classical_solver if classical_solver is not None else GreedySearchSolver()
        )
        self.sampler = sampler if sampler is not None else QuantumAnnealerSimulator()
        self.switch_s = float(switch_s)
        self.pause_duration_us = float(pause_duration_us)
        self.num_reads = int(num_reads)
        self.include_qpu_overheads = bool(include_qpu_overheads)
        self.evaluate_solutions = bool(evaluate_solutions)
        self.batch_size = batch_size

    # ------------------------------------------------------------------ #

    def run(
        self,
        channel_uses: Sequence[ChannelUse],
        pipelined: bool = True,
        rng: BatchRandomState = None,
    ) -> PipelineReport:
        """Simulate the processing of a channel-use stream.

        With ``pipelined=True`` the classical and quantum stages overlap
        across successive channel uses; with ``pipelined=False`` each channel
        use occupies a single combined server for the sum of both service
        times (the non-pipelined baseline).

        Solutions are computed through the batched engine: channel uses are
        grouped into ``batch_size`` chunks and each chunk is submitted as one
        :meth:`~repro.classical.base.QuboSolver.solve_batch` /
        :meth:`~repro.annealing.QuantumAnnealerSimulator.sample_qubo_batch`
        call, with one child generator per channel use so the outcome is
        independent of the grouping.  The discrete-event timing model then
        replays arrivals job by job.
        """
        if not channel_uses:
            raise PipelineError("channel_uses must not be empty")
        children = ensure_rng_batch(rng, len(channel_uses))
        schedule = reverse_anneal_schedule(self.switch_s, self.pause_duration_us)

        # ---- Batched solution computation -----------------------------
        encodings = [
            mimo_to_qubo(channel_use.transmission.instance) for channel_use in channel_uses
        ]
        initials = []
        samplesets: List[Optional[SampleSet]] = []
        for start, chunk in iter_batches(encodings, self.batch_size):
            chunk_children = children[start : start + len(chunk)]
            chunk_qubos = [encoding.qubo for encoding in chunk]
            chunk_initials = self.classical_solver.solve_batch(chunk_qubos, chunk_children)
            initials.extend(chunk_initials)
            if self.evaluate_solutions:
                samplesets.extend(
                    self.sampler.sample_qubo_batch(
                        chunk_qubos,
                        schedule,
                        num_reads=self.num_reads,
                        initial_states=[initial.assignment for initial in chunk_initials],
                        rng=chunk_children,
                    )
                )
            else:
                samplesets.extend([None] * len(chunk))

        # ---- Discrete-event timing replay -----------------------------
        # Each stage is a FIFO server; in the serialised baseline both stages
        # share one combined server (see repro.serving.events.FifoServer for
        # the advance rule both simulators delegate to).
        jobs: List[PipelineJobResult] = []
        classical_server = FifoServer()
        quantum_server = FifoServer()
        combined_server = FifoServer()
        classical_busy = 0.0
        quantum_busy = 0.0

        for channel_use, encoding, initial, sampleset in zip(
            channel_uses, encodings, initials, samplesets
        ):
            ground_energy = encoding.noiseless_ground_energy(channel_use.transmission)

            classical_service = max(initial.compute_time_us, 1e-9)

            quantum_service = schedule.duration_us * self.num_reads
            if self.include_qpu_overheads:
                quantum_service += self.num_reads * (
                    self.sampler.device.readout_time_us + self.sampler.device.inter_sample_delay_us
                )

            best_energy = initial.energy
            if sampleset is not None:
                best_energy = min(best_energy, sampleset.lowest_energy())
            detected_optimum = is_optimum(best_energy, ground_energy)

            arrival = channel_use.arrival_time_us
            if pipelined:
                classical_timing = classical_server.serve(arrival, classical_service)
                quantum_timing = quantum_server.serve(
                    classical_timing.finish_us, quantum_service
                )
            else:
                classical_timing = combined_server.serve(arrival, classical_service)
                quantum_timing = combined_server.serve(
                    classical_timing.finish_us, quantum_service
                )

            classical_busy += classical_service
            quantum_busy += quantum_service
            completion = quantum_timing.finish_us
            latency = completion - arrival
            met_deadline: Optional[bool] = None
            if channel_use.deadline_us is not None:
                met_deadline = bool(completion <= channel_use.deadline_us)

            jobs.append(
                PipelineJobResult(
                    index=channel_use.index,
                    arrival_us=arrival,
                    classical=classical_timing,
                    quantum=quantum_timing,
                    completion_us=completion,
                    latency_us=latency,
                    deadline_us=channel_use.deadline_us,
                    met_deadline=met_deadline,
                    detected_optimum=detected_optimum,
                    best_energy=float(best_energy),
                    ground_energy=ground_energy,
                )
            )

        return self._report(jobs, pipelined, classical_busy, quantum_busy)

    # ------------------------------------------------------------------ #

    def _report(
        self,
        jobs: List[PipelineJobResult],
        pipelined: bool,
        classical_busy: float,
        quantum_busy: float,
    ) -> PipelineReport:
        latencies = np.array([job.latency_us for job in jobs])
        first_arrival = min(job.arrival_us for job in jobs)
        makespan = max(job.completion_us for job in jobs) - first_arrival
        makespan = max(makespan, 1e-9)

        deadline_flags = [job.met_deadline for job in jobs if job.met_deadline is not None]
        miss_rate = None
        if deadline_flags:
            miss_rate = 1.0 - float(np.mean(deadline_flags))

        optimum_flags = [job.detected_optimum for job in jobs if job.detected_optimum is not None]
        optimum_rate = float(np.mean(optimum_flags)) if optimum_flags else None

        return PipelineReport(
            jobs=jobs,
            pipelined=pipelined,
            makespan_us=float(makespan),
            mean_latency_us=float(np.mean(latencies)),
            p95_latency_us=float(np.percentile(latencies, 95)),
            throughput_jobs_per_ms=float(len(jobs) / (makespan / 1000.0)),
            classical_utilization=float(classical_busy / makespan),
            quantum_utilization=float(quantum_busy / makespan),
            deadline_miss_rate=miss_rate,
            optimum_rate=optimum_rate,
            metadata={
                "switch_s": self.switch_s,
                "num_reads": self.num_reads,
                "include_qpu_overheads": self.include_qpu_overheads,
                "classical_solver": self.classical_solver.name,
                "batch_size": self.batch_size,
            },
        )
