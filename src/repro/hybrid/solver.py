"""The hybrid classical-quantum solver (paper Sec. 4.1).

The prototype the paper evaluates consists of two sequential modules:

1. a cheap classical solver — Greedy Search by default — produces a candidate
   solution of the QUBO;
2. reverse annealing, programmed with that candidate as its initial state,
   refines it on the (simulated) quantum annealer.

:class:`HybridQuboSolver` implements that composition for arbitrary QUBOs and
arbitrary classical initialisers.  :class:`HybridMIMODetector` wraps it into an
end-to-end Large MIMO detector: MIMO instance → QuAMax QUBO → classical
initialisation → reverse annealing → decoded symbols and payload bits.  The
classical stage can also be a *signal-domain* detector (zero-forcing, MMSE,
sphere decoder) via :class:`DetectorInitializer`, which is the extension the
paper's Section 5 proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.annealing.sampleset import SampleSet
from repro.annealing.schedule import reverse_anneal_schedule
from repro.classical.base import MIMODetector, QuboSolution, QuboSolver
from repro.classical.greedy import GreedySearchSolver
from repro.exceptions import ConfigurationError
from repro.qubo.model import QUBOModel
from repro.transform.mimo_to_qubo import MIMOQuboEncoding, mimo_to_qubo
from repro.utils.rng import BatchRandomState, RandomState, ensure_rng, ensure_rng_batch
from repro.wireless.mimo import MIMODetectionResult, MIMOInstance

__all__ = [
    "HybridSolverResult",
    "HybridQuboSolver",
    "HybridMIMODetector",
    "DetectorInitializer",
]


@dataclass(frozen=True)
class HybridSolverResult:
    """Outcome of one hybrid (classical + reverse annealing) solve.

    Attributes
    ----------
    best_assignment / best_energy:
        The best solution over both stages (the classical candidate is kept if
        no anneal read improves on it).
    initial_solution:
        The classical stage's output used to program the reverse anneal.
    sampleset:
        All reverse-annealing reads.
    classical_time_us / quantum_time_us:
        Modelled time spent in each stage.  The quantum time is the pure
        anneal time (schedule duration x reads), which is the quantity the
        paper's TTS metric is built on; QPU access overheads are available in
        the sample set metadata.
    """

    best_assignment: np.ndarray
    best_energy: float
    initial_solution: QuboSolution
    sampleset: SampleSet
    switch_s: float
    classical_time_us: float
    quantum_time_us: float
    metadata: Dict = field(default_factory=dict)

    @property
    def total_time_us(self) -> float:
        """Classical plus quantum processing time."""
        return self.classical_time_us + self.quantum_time_us

    @property
    def improved_over_initial(self) -> bool:
        """Whether reverse annealing improved on the classical candidate."""
        return self.best_energy < self.initial_solution.energy - 1e-12


class HybridQuboSolver:
    """Classical initialisation followed by reverse annealing.

    Parameters
    ----------
    classical_solver:
        Any :class:`repro.classical.QuboSolver`; defaults to the paper's
        Greedy Search.
    sampler:
        The annealer simulator; a default instance is created lazily.
    switch_s:
        Reverse-annealing switch/pause location s_p.  The default 0.41 sits in
        the paper's successful interval (0.33-0.49).
    pause_duration_us:
        Pause duration t_p (1 us in the paper).
    num_reads:
        Anneal reads per solve.
    """

    def __init__(
        self,
        classical_solver: Optional[QuboSolver] = None,
        sampler: Optional[QuantumAnnealerSimulator] = None,
        switch_s: float = 0.41,
        pause_duration_us: float = 1.0,
        num_reads: int = 100,
    ) -> None:
        if not 0.0 < switch_s < 1.0:
            raise ConfigurationError(f"switch_s must lie strictly inside (0, 1), got {switch_s}")
        if pause_duration_us < 0:
            raise ConfigurationError(
                f"pause_duration_us must be non-negative, got {pause_duration_us}"
            )
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        self.classical_solver = (
            classical_solver if classical_solver is not None else GreedySearchSolver()
        )
        self.sampler = sampler if sampler is not None else QuantumAnnealerSimulator()
        self.switch_s = float(switch_s)
        self.pause_duration_us = float(pause_duration_us)
        self.num_reads = int(num_reads)

    def solve(self, qubo: QUBOModel, rng: RandomState = None) -> HybridSolverResult:
        """Run the two-stage hybrid solve on a QUBO."""
        generator = ensure_rng(rng)
        initial = self.classical_solver.solve(qubo, generator)

        schedule = reverse_anneal_schedule(self.switch_s, self.pause_duration_us)
        sampleset = self.sampler.sample_qubo(
            qubo,
            schedule,
            num_reads=self.num_reads,
            initial_state=initial.assignment,
            rng=generator,
        )

        best_assignment = initial.assignment
        best_energy = initial.energy
        if len(sampleset) and sampleset.lowest_energy() < best_energy:
            best_assignment = sampleset.first.assignment
            best_energy = sampleset.lowest_energy()

        quantum_time = schedule.duration_us * self.num_reads
        return HybridSolverResult(
            best_assignment=np.asarray(best_assignment, dtype=np.int8),
            best_energy=float(best_energy),
            initial_solution=initial,
            sampleset=sampleset,
            switch_s=self.switch_s,
            classical_time_us=initial.compute_time_us,
            quantum_time_us=quantum_time,
            metadata={
                "classical_solver": self.classical_solver.name,
                "schedule": schedule.as_pairs(),
                "num_reads": self.num_reads,
            },
        )

    def solve_batch(
        self, qubos: Sequence[QUBOModel], rng: BatchRandomState = None
    ) -> List[HybridSolverResult]:
        """Run the two-stage hybrid solve on a batch of independent QUBOs.

        Both stages are submitted batched: the classical initialiser via
        :meth:`~repro.classical.base.QuboSolver.solve_batch`, and all reverse
        anneals as one vectorised
        :meth:`~repro.annealing.QuantumAnnealerSimulator.sample_qubo_batch`
        call.  Instance ``b`` consumes only child generator ``b`` in both
        stages, so the results are bitwise-identical to calling :meth:`solve`
        per instance with those children.
        """
        children = ensure_rng_batch(rng, len(qubos))
        initials = self.classical_solver.solve_batch(qubos, children)

        schedule = reverse_anneal_schedule(self.switch_s, self.pause_duration_us)
        samplesets = self.sampler.sample_qubo_batch(
            qubos,
            schedule,
            num_reads=self.num_reads,
            initial_states=[initial.assignment for initial in initials],
            rng=children,
        )

        results: List[HybridSolverResult] = []
        quantum_time = schedule.duration_us * self.num_reads
        for qubo, initial, sampleset in zip(qubos, initials, samplesets):
            best_assignment = initial.assignment
            best_energy = initial.energy
            if len(sampleset) and sampleset.lowest_energy() < best_energy:
                best_assignment = sampleset.first.assignment
                best_energy = sampleset.lowest_energy()
            results.append(
                HybridSolverResult(
                    best_assignment=np.asarray(best_assignment, dtype=np.int8),
                    best_energy=float(best_energy),
                    initial_solution=initial,
                    sampleset=sampleset,
                    switch_s=self.switch_s,
                    classical_time_us=initial.compute_time_us,
                    quantum_time_us=quantum_time,
                    metadata={
                        "classical_solver": self.classical_solver.name,
                        "schedule": schedule.as_pairs(),
                        "num_reads": self.num_reads,
                    },
                )
            )
        return results


class DetectorInitializer(QuboSolver):
    """Adapts a signal-domain MIMO detector into a QUBO initialiser.

    The detector runs on the original MIMO instance; its symbol decisions are
    converted into the QUBO bit encoding, giving reverse annealing a
    (potentially much better) initial state than greedy search — the hybrid
    design extension the paper's conclusion proposes.
    """

    def __init__(
        self,
        detector: MIMODetector,
        encoding: MIMOQuboEncoding,
        modelled_time_us: float = 1.0,
    ) -> None:
        if modelled_time_us < 0:
            raise ConfigurationError(
                f"modelled_time_us must be non-negative, got {modelled_time_us}"
            )
        self.detector = detector
        self.encoding = encoding
        self.modelled_time_us = float(modelled_time_us)
        self.name = f"detector-initializer({detector.name})"

    def solve(self, qubo: QUBOModel, rng: RandomState = None) -> QuboSolution:
        """Detect on the wrapped instance and express the result as QUBO bits."""
        symbols = self.detector.detect(self.encoding.instance)
        bits = self.encoding.symbols_to_bits(symbols)
        return QuboSolution(
            assignment=bits,
            energy=qubo.energy(bits),
            solver_name=self.name,
            compute_time_us=self.modelled_time_us,
            iterations=1,
            metadata={"detector": self.detector.name},
        )


class HybridMIMODetector:
    """End-to-end Large MIMO detection through the hybrid solver.

    Parameters
    ----------
    initializer:
        ``"greedy"`` (default, the paper's GS), any :class:`QuboSolver`, or a
        signal-domain :class:`MIMODetector` (wrapped automatically).
    sampler, switch_s, pause_duration_us, num_reads:
        Forwarded to :class:`HybridQuboSolver`.
    """

    def __init__(
        self,
        initializer: Union[str, QuboSolver, MIMODetector] = "greedy",
        sampler: Optional[QuantumAnnealerSimulator] = None,
        switch_s: float = 0.41,
        pause_duration_us: float = 1.0,
        num_reads: int = 100,
    ) -> None:
        self.initializer = initializer
        self.sampler = sampler if sampler is not None else QuantumAnnealerSimulator()
        self.switch_s = switch_s
        self.pause_duration_us = pause_duration_us
        self.num_reads = num_reads

    def _resolve_initializer(self, encoding: MIMOQuboEncoding) -> QuboSolver:
        if isinstance(self.initializer, str):
            if self.initializer.lower() in ("greedy", "gs", "greedy-search"):
                return GreedySearchSolver()
            raise ConfigurationError(
                f"unknown initializer name {self.initializer!r}; use 'greedy', a "
                "QuboSolver, or a MIMODetector"
            )
        if isinstance(self.initializer, MIMODetector):
            return DetectorInitializer(self.initializer, encoding)
        if isinstance(self.initializer, QuboSolver):
            return self.initializer
        raise ConfigurationError(
            f"initializer must be a name, QuboSolver or MIMODetector, got "
            f"{type(self.initializer).__name__}"
        )

    def detect(
        self, instance: MIMOInstance, rng: RandomState = None
    ) -> MIMODetectionResult:
        """Detect one MIMO instance; see :meth:`detect_with_details` for internals."""
        result, _ = self.detect_with_details(instance, rng)
        return result

    def detect_with_details(
        self, instance: MIMOInstance, rng: RandomState = None
    ) -> tuple:
        """Detect and also return the underlying :class:`HybridSolverResult`."""
        encoding = mimo_to_qubo(instance)
        solver = HybridQuboSolver(
            classical_solver=self._resolve_initializer(encoding),
            sampler=self.sampler,
            switch_s=self.switch_s,
            pause_duration_us=self.pause_duration_us,
            num_reads=self.num_reads,
        )
        hybrid_result = solver.solve(encoding.qubo, rng)
        detection = encoding.detection_result(
            hybrid_result.best_assignment, algorithm="hybrid-gs-ra"
        )
        return detection, hybrid_result

    def detect_batch(
        self, instances: Sequence[MIMOInstance], rng: BatchRandomState = None
    ) -> List[MIMODetectionResult]:
        """Detect a batch of independent MIMO instances through one submission."""
        return [result for result, _ in self.detect_batch_with_details(instances, rng)]

    def detect_batch_with_details(
        self, instances: Sequence[MIMOInstance], rng: BatchRandomState = None
    ) -> List[Tuple[MIMODetectionResult, HybridSolverResult]]:
        """Batched :meth:`detect_with_details`.

        The classical initialisers run per instance (they may be
        instance-specific, e.g. signal-domain detectors), but every reverse
        anneal of the batch is submitted as one vectorised
        ``sample_qubo_batch`` call.  With per-instance child generators the
        results are bitwise-identical to calling :meth:`detect_with_details`
        per instance with those children.
        """
        encodings = [mimo_to_qubo(instance) for instance in instances]
        children = ensure_rng_batch(rng, len(instances))
        initials = [
            self._resolve_initializer(encoding).solve(encoding.qubo, child)
            for encoding, child in zip(encodings, children)
        ]

        schedule = reverse_anneal_schedule(self.switch_s, self.pause_duration_us)
        sampler_batch = self.sampler.sample_qubo_batch(
            [encoding.qubo for encoding in encodings],
            schedule,
            num_reads=self.num_reads,
            initial_states=[initial.assignment for initial in initials],
            rng=children,
        )

        quantum_time = schedule.duration_us * self.num_reads
        outputs: List[Tuple[MIMODetectionResult, HybridSolverResult]] = []
        for encoding, initial, sampleset in zip(encodings, initials, sampler_batch):
            best_assignment = initial.assignment
            best_energy = initial.energy
            if len(sampleset) and sampleset.lowest_energy() < best_energy:
                best_assignment = sampleset.first.assignment
                best_energy = sampleset.lowest_energy()
            hybrid_result = HybridSolverResult(
                best_assignment=np.asarray(best_assignment, dtype=np.int8),
                best_energy=float(best_energy),
                initial_solution=initial,
                sampleset=sampleset,
                switch_s=self.switch_s,
                classical_time_us=initial.compute_time_us,
                quantum_time_us=quantum_time,
                metadata={
                    "classical_solver": initial.solver_name,
                    "schedule": schedule.as_pairs(),
                    "num_reads": self.num_reads,
                },
            )
            detection = encoding.detection_result(
                hybrid_result.best_assignment, algorithm="hybrid-gs-ra"
            )
            outputs.append((detection, hybrid_result))
        return outputs
