"""The paper's primary contribution: hybrid classical-quantum processing.

* :mod:`repro.hybrid.solver` — the GS + reverse-annealing hybrid QUBO solver
  (paper Sec. 4.1) and its end-to-end MIMO detection wrapper, with pluggable
  classical initialisers (greedy search, linear detectors, sphere decoders).
* :mod:`repro.hybrid.parameters` — sweeps and selection of the schedule
  parameters s_p / c_p the paper identifies as Design Challenge 2.
* :mod:`repro.hybrid.pipeline` — the staged classical/quantum pipeline over
  successive channel uses sketched in paper Figure 2 (Design Challenge 3).
"""

from repro.hybrid.solver import (
    HybridSolverResult,
    HybridQuboSolver,
    HybridMIMODetector,
    DetectorInitializer,
)
from repro.hybrid.parameters import (
    SwitchPointRecord,
    sweep_switch_point,
    sweep_switch_point_batch,
    best_switch_point,
    sweep_forward_reverse_turning_point,
)
from repro.hybrid.pipeline import (
    StageTiming,
    PipelineJobResult,
    PipelineReport,
    HybridPipelineSimulator,
)

__all__ = [
    "HybridSolverResult",
    "HybridQuboSolver",
    "HybridMIMODetector",
    "DetectorInitializer",
    "SwitchPointRecord",
    "sweep_switch_point",
    "sweep_switch_point_batch",
    "best_switch_point",
    "sweep_forward_reverse_turning_point",
    "StageTiming",
    "PipelineJobResult",
    "PipelineReport",
    "HybridPipelineSimulator",
]
