"""Schedule-parameter sweeps: the paper's Design Challenge 2.

The performance of every annealing flavour depends on the switch/pause
location ``s_p`` (and, for forward-reverse annealing, the turning point
``c_p``).  The paper sweeps ``s_p`` from 0.25 to 0.99 in steps of 0.04
(Sec. 4.2) and reports success probability and TTS as functions of it
(Figure 8); FR's ``c_p`` is chosen by exhaustive "oracle" search.

The helpers here run those sweeps against the simulator and return structured
records the experiment runners and benchmarks print directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.annealing.schedule import (
    forward_anneal_schedule,
    forward_reverse_anneal_schedule,
    reverse_anneal_schedule,
)
from repro.exceptions import ConfigurationError
from repro.metrics.tts import TTSResult, time_to_solution
from repro.qubo.model import QUBOModel
from repro.utils.rng import BatchRandomState, RandomState, ensure_rng, ensure_rng_batch

__all__ = [
    "SwitchPointRecord",
    "paper_switch_point_grid",
    "sweep_switch_point",
    "sweep_switch_point_batch",
    "best_switch_point",
    "sweep_forward_reverse_turning_point",
]


@dataclass(frozen=True)
class SwitchPointRecord:
    """Result of evaluating one schedule parameterisation.

    Attributes
    ----------
    method:
        "FA", "RA" or "FR".
    switch_s:
        The swept parameter value (s_p; for FR records this is s_p while
        ``turning_s`` carries c_p).
    success_probability:
        Empirical p* over the reads.
    tts:
        Time-to-solution derived from p* and the schedule duration.
    expectation_energy:
        Occurrence-weighted mean sample energy.
    duration_us:
        Schedule duration.
    turning_s:
        FR turning point c_p (None for FA/RA).
    """

    method: str
    switch_s: float
    success_probability: float
    tts: TTSResult
    expectation_energy: float
    duration_us: float
    turning_s: Optional[float] = None


def paper_switch_point_grid(step: float = 0.04) -> np.ndarray:
    """The paper's s_p grid: 0.25 to 0.99 in steps of 0.04."""
    if step <= 0:
        raise ConfigurationError(f"step must be positive, got {step}")
    return np.round(np.arange(0.25, 0.99 + 1e-9, step), 6)


def sweep_switch_point(
    qubo: QUBOModel,
    ground_energy: float,
    method: str = "RA",
    switch_values: Optional[Sequence[float]] = None,
    initial_state: Optional[Sequence[int]] = None,
    sampler: Optional[QuantumAnnealerSimulator] = None,
    num_reads: int = 500,
    pause_duration_us: float = 1.0,
    anneal_time_us: float = 1.0,
    confidence_percent: float = 99.0,
    rng: RandomState = None,
) -> List[SwitchPointRecord]:
    """Sweep s_p for one annealing method and return one record per value.

    For ``method="RA"`` an ``initial_state`` is required; for ``"FA"`` the
    sweep varies the pause location; for ``"FR"`` the turning point is fixed
    at ``min(s_p + 0.2, 0.95)`` — use
    :func:`sweep_forward_reverse_turning_point` for the oracle c_p search.
    """
    method = method.upper()
    if method not in ("FA", "RA", "FR"):
        raise ConfigurationError(f"method must be 'FA', 'RA' or 'FR', got {method!r}")
    if method == "RA" and initial_state is None:
        raise ConfigurationError("reverse annealing sweeps require an initial_state")

    values = np.asarray(
        switch_values if switch_values is not None else paper_switch_point_grid(), dtype=float
    )
    annealer = sampler if sampler is not None else QuantumAnnealerSimulator()
    generator = ensure_rng(rng)

    records: List[SwitchPointRecord] = []
    for switch_s in values:
        switch_s = float(switch_s)
        turning_s: Optional[float] = None
        if method == "FA":
            schedule = forward_anneal_schedule(anneal_time_us, switch_s, pause_duration_us)
            sampleset = annealer.sample_qubo(qubo, schedule, num_reads, None, generator)
        elif method == "RA":
            schedule = reverse_anneal_schedule(switch_s, pause_duration_us)
            sampleset = annealer.sample_qubo(qubo, schedule, num_reads, initial_state, generator)
        else:
            turning_s = min(switch_s + 0.2, 0.95)
            schedule = forward_reverse_anneal_schedule(
                turning_s, switch_s, pause_duration_us, anneal_time_us
            )
            sampleset = annealer.sample_qubo(qubo, schedule, num_reads, None, generator)

        probability = sampleset.success_probability(ground_energy)
        tts = time_to_solution(probability, schedule.duration_us, confidence_percent)
        records.append(
            SwitchPointRecord(
                method=method,
                switch_s=switch_s,
                success_probability=probability,
                tts=tts,
                expectation_energy=sampleset.expectation_energy(),
                duration_us=schedule.duration_us,
                turning_s=turning_s,
            )
        )
    return records


def sweep_switch_point_batch(
    qubos: Sequence[QUBOModel],
    ground_energies: Sequence[float],
    method: str = "RA",
    switch_values: Optional[Sequence[float]] = None,
    initial_states: Optional[Sequence[Optional[Sequence[int]]]] = None,
    sampler: Optional[QuantumAnnealerSimulator] = None,
    num_reads: int = 500,
    pause_duration_us: float = 1.0,
    anneal_time_us: float = 1.0,
    confidence_percent: float = 99.0,
    rng: BatchRandomState = None,
) -> List[List[SwitchPointRecord]]:
    """Sweep s_p for a *batch* of instances and return per-instance records.

    At every grid point all instances are submitted to the annealer simulator
    as one batched call, so the whole sweep runs B instances wide through the
    vectorised backend kernel instead of looping.  The entries of ``qubos``
    may repeat (e.g. one detection problem swept from several initial states,
    as Figure 8 does) or differ (e.g. the headline experiment's instance
    seeds).  Per-instance child generators make the result identical to
    running :func:`sweep_switch_point` once per instance with those children.

    Returns one ``List[SwitchPointRecord]`` (ordered like the grid) per
    instance.
    """
    method = method.upper()
    if method not in ("FA", "RA", "FR"):
        raise ConfigurationError(f"method must be 'FA', 'RA' or 'FR', got {method!r}")
    if len(ground_energies) != len(qubos):
        raise ConfigurationError(
            f"{len(ground_energies)} ground energies supplied for {len(qubos)} instances"
        )
    if method == "RA":
        if initial_states is None or any(state is None for state in initial_states):
            raise ConfigurationError("reverse annealing sweeps require initial states")
    if initial_states is not None and len(initial_states) != len(qubos):
        raise ConfigurationError(
            f"{len(initial_states)} initial states supplied for {len(qubos)} instances"
        )

    values = np.asarray(
        switch_values if switch_values is not None else paper_switch_point_grid(), dtype=float
    )
    annealer = sampler if sampler is not None else QuantumAnnealerSimulator()
    children = ensure_rng_batch(rng, len(qubos))

    results: List[List[SwitchPointRecord]] = [[] for _ in qubos]
    for switch_s in values:
        switch_s = float(switch_s)
        turning_s: Optional[float] = None
        if method == "FA":
            schedule = forward_anneal_schedule(anneal_time_us, switch_s, pause_duration_us)
            states: Optional[Sequence] = None
        elif method == "RA":
            schedule = reverse_anneal_schedule(switch_s, pause_duration_us)
            states = initial_states
        else:
            turning_s = min(switch_s + 0.2, 0.95)
            schedule = forward_reverse_anneal_schedule(
                turning_s, switch_s, pause_duration_us, anneal_time_us
            )
            states = None
        samplesets = annealer.sample_qubo_batch(qubos, schedule, num_reads, states, children)
        for index, (sampleset, ground_energy) in enumerate(zip(samplesets, ground_energies)):
            probability = sampleset.success_probability(float(ground_energy))
            tts = time_to_solution(probability, schedule.duration_us, confidence_percent)
            results[index].append(
                SwitchPointRecord(
                    method=method,
                    switch_s=switch_s,
                    success_probability=probability,
                    tts=tts,
                    expectation_energy=sampleset.expectation_energy(),
                    duration_us=schedule.duration_us,
                    turning_s=turning_s,
                )
            )
    return results


def best_switch_point(records: Sequence[SwitchPointRecord]) -> SwitchPointRecord:
    """The record with the lowest finite TTS (ties broken by higher p*).

    Falls back to the highest success probability when no record has a finite
    TTS (i.e. the method never found the optimum anywhere on the grid).
    """
    if not records:
        raise ConfigurationError("no records supplied")
    finite = [record for record in records if record.tts.is_finite]
    if finite:
        return min(finite, key=lambda record: (record.tts.tts_us, -record.success_probability))
    return max(records, key=lambda record: record.success_probability)


def sweep_forward_reverse_turning_point(
    qubo: QUBOModel,
    ground_energy: float,
    switch_s: float,
    turning_values: Optional[Sequence[float]] = None,
    sampler: Optional[QuantumAnnealerSimulator] = None,
    num_reads: int = 500,
    pause_duration_us: float = 1.0,
    anneal_time_us: float = 1.0,
    confidence_percent: float = 99.0,
    rng: RandomState = None,
) -> List[SwitchPointRecord]:
    """Oracle search over FR's turning point c_p at a fixed s_p (paper Sec. 4.3)."""
    if not 0.0 < switch_s < 1.0:
        raise ConfigurationError(f"switch_s must lie strictly inside (0, 1), got {switch_s}")
    values = np.asarray(
        turning_values
        if turning_values is not None
        else [value for value in paper_switch_point_grid() if value >= switch_s],
        dtype=float,
    )
    annealer = sampler if sampler is not None else QuantumAnnealerSimulator()
    generator = ensure_rng(rng)

    records: List[SwitchPointRecord] = []
    for turning_s in values:
        turning_s = float(turning_s)
        if turning_s < switch_s:
            continue
        schedule = forward_reverse_anneal_schedule(
            turning_s, switch_s, pause_duration_us, anneal_time_us
        )
        sampleset = annealer.sample_qubo(qubo, schedule, num_reads, None, generator)
        probability = sampleset.success_probability(ground_energy)
        tts = time_to_solution(probability, schedule.duration_us, confidence_percent)
        records.append(
            SwitchPointRecord(
                method="FR",
                switch_s=switch_s,
                success_probability=probability,
                tts=tts,
                expectation_energy=sampleset.expectation_energy(),
                duration_us=schedule.duration_us,
                turning_s=turning_s,
            )
        )
    return records
