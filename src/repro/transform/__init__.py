"""Reduction of MIMO maximum-likelihood detection to QUBO form.

The paper applies the QuAMax mapping (Kim et al., SIGCOMM'19) to turn the ML
detection objective ``||y - H x||^2`` into the QUBO of Eq. 1, one binary
variable per payload bit.  This package implements that reduction and its
inverse:

* :mod:`repro.transform.symbol_mapping` — per-modulation mapping between QUBO
  variables, per-dimension amplitudes, and Gray-coded payload bits.
* :mod:`repro.transform.mimo_to_qubo` — the quadratic-form expansion producing
  a :class:`repro.qubo.QUBOModel` from a :class:`repro.wireless.MIMOInstance`,
  plus helpers to decode a QUBO bitstring back into detected symbols and
  payload bits.
"""

from repro.transform.symbol_mapping import (
    SymbolBitMapping,
    transform_bits_to_amplitude,
    amplitude_to_transform_bits,
    transform_bits_to_gray_bits,
    gray_bits_to_transform_bits,
)
from repro.transform.mimo_to_qubo import (
    MIMOQuboEncoding,
    mimo_to_qubo,
    decode_bits_to_symbols,
)

__all__ = [
    "SymbolBitMapping",
    "transform_bits_to_amplitude",
    "amplitude_to_transform_bits",
    "transform_bits_to_gray_bits",
    "gray_bits_to_transform_bits",
    "MIMOQuboEncoding",
    "mimo_to_qubo",
    "decode_bits_to_symbols",
]
