"""The QuAMax reduction: MIMO maximum-likelihood detection to QUBO form.

The ML detection objective is ``||y - H x||^2`` minimised over constellation
vectors ``x``.  Writing each symbol's I/Q amplitudes as linear functions of
binary variables (see :mod:`repro.transform.symbol_mapping`) gives

    x = A q + b,          A in C^{Nt x N},  b in C^{Nt},

and substituting into the objective yields an exactly equivalent QUBO

    E(q) = q^T Re(G^H G) q - 2 Re(y_eff^H G) q        (+ constant),

with ``G = H A`` and ``y_eff = y - H b``.  Following the QuAMax convention the
constant ``||y_eff||^2`` is *not* included in the QUBO (it is recorded in the
encoding), so ground-state energies are negative and the paper's ΔE% metric is
well defined.

:func:`mimo_to_qubo` builds the QUBO together with a :class:`MIMOQuboEncoding`
that can decode any QUBO bitstring back into detected symbols and Gray-coded
payload bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import TransformError
from repro.qubo.model import QUBOModel
from repro.wireless.mimo import MIMODetectionResult, MIMOInstance
from repro.wireless.modulation import Modulation
from repro.transform.symbol_mapping import SymbolBitMapping

__all__ = [
    "OPTIMUM_TOLERANCE",
    "MIMOQuboEncoding",
    "mimo_to_qubo",
    "decode_bits_to_symbols",
    "is_optimum",
]

#: Energy tolerance below which a solution counts as having reached the
#: (noiseless-protocol) ground energy.  Shared by every simulator that
#: reports optimum-detection rates so the evaluation rule cannot drift.
OPTIMUM_TOLERANCE = 1e-6


@dataclass(frozen=True)
class MIMOQuboEncoding:
    """A MIMO detection instance together with its QUBO encoding.

    Attributes
    ----------
    instance:
        The original detection instance (channel, received vector, modulation).
    qubo:
        The equivalent QUBO (constant term excluded, per QuAMax convention).
    constant:
        The excluded constant ``||y_eff||^2``; ``qubo.energy(q) + constant``
        equals the ML objective ``||y - H x(q)||^2`` exactly.
    mappings:
        Per-user bit layout descriptors.
    amplitude_matrix / amplitude_offset:
        The linear map ``x = A q + b`` used by the reduction.
    """

    instance: MIMOInstance
    qubo: QUBOModel
    constant: float
    mappings: Tuple[SymbolBitMapping, ...]
    amplitude_matrix: np.ndarray = field(repr=False)
    amplitude_offset: np.ndarray = field(repr=False)

    @property
    def num_variables(self) -> int:
        """Number of QUBO variables (payload bits per channel use)."""
        return self.qubo.num_variables

    @property
    def modulation(self) -> Modulation:
        """The modulation scheme of the encoded instance."""
        return self.instance.modulation_scheme

    def noiseless_ground_energy(self, transmission) -> "float | None":
        """Exact ground energy of the encoded QUBO, if analytically known.

        In the paper's noiseless protocol the transmitted vector *is* the ML
        solution, so its QUBO energy is the ground energy.  With noise or
        interference on the received vector, or with imperfect CSI (the QUBO
        is built from a channel *estimate*, so even a noiseless received
        vector does not lie in the estimate's column space), the ground
        energy is unknown and ``None`` is returned — robustness studies must
        establish it with an exhaustive QUBO solve instead.
        """
        if transmission.noise_variance != 0.0:
            return None
        if transmission.csi_error_variance != 0.0 or not transmission.has_perfect_csi:
            return None
        if transmission.interference_power != 0.0:
            return None
        bits = self.symbols_to_bits(transmission.transmitted_symbols)
        return float(self.qubo.energy(bits))

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #

    def bits_to_symbols(self, qubo_bits: Sequence[int]) -> np.ndarray:
        """Reconstruct the complex symbol vector encoded by a QUBO bitstring."""
        bits = self._validate_bits(qubo_bits)
        return np.asarray(
            [mapping.symbol_from_bits(bits) for mapping in self.mappings], dtype=complex
        )

    def symbols_to_bits(self, symbols: Sequence[complex]) -> np.ndarray:
        """QUBO bitstring encoding an exact constellation symbol vector."""
        symbols = np.asarray(symbols, dtype=complex).ravel()
        if symbols.size != len(self.mappings):
            raise TransformError(
                f"expected {len(self.mappings)} symbols, got {symbols.size}"
            )
        bits: List[int] = []
        for mapping, symbol in zip(self.mappings, symbols):
            bits.extend(mapping.bits_from_symbol(complex(symbol)))
        return np.asarray(bits, dtype=np.int8)

    def payload_bits(self, qubo_bits: Sequence[int]) -> np.ndarray:
        """Gray-coded payload bits (what the MAC layer receives) for a bitstring."""
        bits = self._validate_bits(qubo_bits)
        payload: List[int] = []
        for mapping in self.mappings:
            payload.extend(mapping.gray_payload_bits(bits))
        return np.asarray(payload, dtype=np.int8)

    def bits_from_payload(self, payload_bits: Sequence[int]) -> np.ndarray:
        """QUBO bitstring corresponding to Gray-coded payload bits."""
        payload_bits = np.asarray(payload_bits, dtype=int).ravel()
        expected = sum(mapping.bits_per_symbol for mapping in self.mappings)
        if payload_bits.size != expected:
            raise TransformError(
                f"expected {expected} payload bits, got {payload_bits.size}"
            )
        bits: List[int] = []
        cursor = 0
        for mapping in self.mappings:
            chunk = payload_bits[cursor : cursor + mapping.bits_per_symbol]
            bits.extend(mapping.transform_bits_from_payload(chunk.tolist()))
            cursor += mapping.bits_per_symbol
        return np.asarray(bits, dtype=np.int8)

    def ml_objective(self, qubo_bits: Sequence[int]) -> float:
        """Exact ML objective ``||y - H x(q)||^2`` of a QUBO bitstring."""
        return self.qubo.energy(qubo_bits) + self.constant

    def detection_result(
        self, qubo_bits: Sequence[int], algorithm: str = "qubo"
    ) -> MIMODetectionResult:
        """Package a QUBO bitstring as a :class:`MIMODetectionResult`."""
        bits = self._validate_bits(qubo_bits)
        symbols = self.bits_to_symbols(bits)
        return MIMODetectionResult(
            symbols=symbols,
            bits=self.payload_bits(bits),
            objective_value=self.ml_objective(bits),
            algorithm=algorithm,
            metadata={"qubo_bits": np.asarray(bits, dtype=np.int8)},
        )

    def _validate_bits(self, qubo_bits: Sequence[int]) -> np.ndarray:
        bits = np.asarray(qubo_bits, dtype=int).ravel()
        if bits.size != self.num_variables:
            raise TransformError(
                f"expected {self.num_variables} QUBO bits, got {bits.size}"
            )
        if bits.size and not np.all(np.isin(bits, (0, 1))):
            raise TransformError("QUBO bits must be 0 or 1")
        return bits


def _amplitude_map(
    instance: MIMOInstance,
) -> Tuple[np.ndarray, np.ndarray, Tuple[SymbolBitMapping, ...]]:
    """Build the linear map ``x = A q + b`` and the per-user bit layouts."""
    modulation = instance.modulation_scheme
    num_users = instance.num_users
    bits_per_symbol = modulation.bits_per_symbol
    bits_per_dim = modulation.bits_per_dimension
    scale = modulation.scale
    total_bits = num_users * bits_per_symbol

    amplitude_matrix = np.zeros((num_users, total_bits), dtype=complex)
    amplitude_offset = np.zeros(num_users, dtype=complex)
    mappings: List[SymbolBitMapping] = []

    for user in range(num_users):
        first = user * bits_per_symbol
        mapping = SymbolBitMapping(modulation=modulation, user_index=user, first_variable=first)
        mappings.append(mapping)

        # In-phase bits: amplitude = scale * sum 2^(m-1-j) (2 q_j - 1)
        for position, variable in enumerate(mapping.in_phase_indices):
            weight = scale * (1 << (bits_per_dim - 1 - position))
            amplitude_matrix[user, variable] += 2.0 * weight
            amplitude_offset[user] -= weight
        # Quadrature bits contribute to the imaginary part (absent for BPSK).
        for position, variable in enumerate(mapping.quadrature_indices):
            weight = scale * (1 << (bits_per_dim - 1 - position))
            amplitude_matrix[user, variable] += 2.0j * weight
            amplitude_offset[user] -= 1.0j * weight

    return amplitude_matrix, amplitude_offset, tuple(mappings)


def mimo_to_qubo(instance: MIMOInstance) -> MIMOQuboEncoding:
    """Reduce a MIMO detection instance to an exactly equivalent QUBO.

    The returned encoding satisfies, for every QUBO bitstring ``q``::

        encoding.qubo.energy(q) + encoding.constant
            == || instance.received - instance.channel_matrix @ x(q) ||^2

    where ``x(q)`` is the symbol vector decoded by ``encoding.bits_to_symbols``.
    """
    amplitude_matrix, amplitude_offset, mappings = _amplitude_map(instance)
    channel = instance.channel_matrix
    received = instance.received

    effective_matrix = channel @ amplitude_matrix  # G = H A, shape (Nr, N)
    effective_received = received - channel @ amplitude_offset  # y_eff = y - H b

    gram = np.real(np.conjugate(effective_matrix.T) @ effective_matrix)
    linear_correlation = np.real(np.conjugate(effective_received) @ effective_matrix)

    total_bits = amplitude_matrix.shape[1]
    coefficients = np.zeros((total_bits, total_bits))
    for i in range(total_bits):
        coefficients[i, i] = gram[i, i] - 2.0 * linear_correlation[i]
        for j in range(i + 1, total_bits):
            coefficients[i, j] = 2.0 * gram[i, j]

    constant = float(np.real(np.vdot(effective_received, effective_received)))

    modulation = instance.modulation_scheme
    names = []
    for mapping in mappings:
        for offset_index in range(modulation.bits_per_symbol):
            names.append(f"u{mapping.user_index}b{offset_index}")

    qubo = QUBOModel(coefficients=coefficients, offset=0.0, variable_names=tuple(names))
    return MIMOQuboEncoding(
        instance=instance,
        qubo=qubo,
        constant=constant,
        mappings=mappings,
        amplitude_matrix=amplitude_matrix,
        amplitude_offset=amplitude_offset,
    )


def decode_bits_to_symbols(encoding: MIMOQuboEncoding, qubo_bits: Sequence[int]) -> np.ndarray:
    """Convenience wrapper around :meth:`MIMOQuboEncoding.bits_to_symbols`."""
    return encoding.bits_to_symbols(qubo_bits)


def is_optimum(best_energy: float, ground_energy: "float | None") -> "bool | None":
    """The shared optimum-detection rule: best within tolerance of ground.

    Returns ``None`` when the ground energy is unknown (noisy protocol).
    """
    if ground_energy is None:
        return None
    return bool(best_energy <= ground_energy + OPTIMUM_TOLERANCE)
