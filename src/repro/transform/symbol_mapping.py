"""Mapping between QUBO variables, QAM amplitudes, and Gray-coded payload bits.

The QuAMax reduction expresses each I/Q amplitude of a transmitted symbol as a
*linear* function of binary variables so that the ML objective stays quadratic:

    amplitude = scale * sum_{j=0}^{m-1} 2^(m-1-j) * (2 * q_j - 1)

with ``m`` bits per dimension (1 for BPSK/QPSK, 2 for 16-QAM, 3 for 64-QAM).
These "transform bits" use a natural binary weighting, whereas the air
interface labels constellation points with *Gray* codes (so adjacent
constellation points differ in one payload bit).  This module provides both
directions of that correspondence, which the decoder needs to report payload
bits and BER after quantum detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import TransformError
from repro.wireless.modulation import (
    Modulation,
    gray_code,
    gray_decode,
    int_to_bits,
    bits_to_int,
)

__all__ = [
    "SymbolBitMapping",
    "transform_bits_to_amplitude",
    "amplitude_to_transform_bits",
    "transform_bits_to_gray_bits",
    "gray_bits_to_transform_bits",
]


def transform_bits_to_amplitude(bits: Sequence[int], scale: float = 1.0) -> float:
    """Amplitude of one I/Q dimension from its transform bits (MSB first)."""
    bits = list(bits)
    if not bits:
        raise TransformError("at least one transform bit is required per dimension")
    if any(bit not in (0, 1) for bit in bits):
        raise TransformError("transform bits must be 0 or 1")
    width = len(bits)
    amplitude = sum(
        (1 << (width - 1 - position)) * (2 * bit - 1) for position, bit in enumerate(bits)
    )
    return float(amplitude) * scale


def amplitude_to_transform_bits(
    amplitude: float, bits_per_dimension: int, scale: float = 1.0
) -> Tuple[int, ...]:
    """Invert :func:`transform_bits_to_amplitude` for an exact grid amplitude."""
    if bits_per_dimension <= 0:
        raise TransformError("bits_per_dimension must be positive")
    count = 1 << bits_per_dimension
    grid_value = amplitude / scale
    natural = (grid_value + (count - 1)) / 2.0
    natural_index = int(round(natural))
    if not 0 <= natural_index < count or abs(natural - natural_index) > 1e-6:
        raise TransformError(
            f"amplitude {amplitude!r} is not on the {bits_per_dimension}-bit grid "
            f"(scale {scale!r})"
        )
    return int_to_bits(natural_index, bits_per_dimension)


def transform_bits_to_gray_bits(bits: Sequence[int]) -> Tuple[int, ...]:
    """Convert one dimension's transform bits into its Gray-coded payload bits."""
    width = len(list(bits))
    natural = bits_to_int(bits)
    return int_to_bits(gray_code(natural), width)


def gray_bits_to_transform_bits(bits: Sequence[int]) -> Tuple[int, ...]:
    """Convert Gray-coded payload bits into the transform bits of that dimension."""
    width = len(list(bits))
    label = bits_to_int(bits)
    return int_to_bits(gray_decode(label), width)


@dataclass(frozen=True)
class SymbolBitMapping:
    """Bit layout of one user's symbol inside the QUBO variable vector.

    The QuAMax convention used throughout this library orders each user's
    variables as ``[I-dimension bits (MSB first), Q-dimension bits (MSB
    first)]``; BPSK has a single in-phase bit and no quadrature bits.

    Attributes
    ----------
    modulation:
        The user's modulation scheme.
    user_index:
        Index of the user (spatial stream) this mapping describes.
    first_variable:
        Index of the user's first QUBO variable.
    """

    modulation: Modulation
    user_index: int
    first_variable: int

    @property
    def bits_per_symbol(self) -> int:
        """Number of QUBO variables representing this user's symbol."""
        return self.modulation.bits_per_symbol

    @property
    def variable_indices(self) -> Tuple[int, ...]:
        """The user's QUBO variable indices, in layout order."""
        return tuple(range(self.first_variable, self.first_variable + self.bits_per_symbol))

    @property
    def in_phase_indices(self) -> Tuple[int, ...]:
        """QUBO variables carrying the in-phase (real) amplitude."""
        if self.modulation.name == "BPSK":
            return self.variable_indices
        half = self.bits_per_symbol // 2
        return self.variable_indices[:half]

    @property
    def quadrature_indices(self) -> Tuple[int, ...]:
        """QUBO variables carrying the quadrature (imaginary) amplitude."""
        if self.modulation.name == "BPSK":
            return ()
        half = self.bits_per_symbol // 2
        return self.variable_indices[half:]

    def symbol_from_bits(self, qubo_bits: Sequence[int]) -> complex:
        """Reconstruct this user's complex symbol from the full QUBO bit vector."""
        qubo_bits = np.asarray(qubo_bits, dtype=int).ravel()
        scale = self.modulation.scale
        in_phase_bits = [int(qubo_bits[i]) for i in self.in_phase_indices]
        real = transform_bits_to_amplitude(in_phase_bits, scale)
        if not self.quadrature_indices:
            return complex(real, 0.0)
        quadrature_bits = [int(qubo_bits[i]) for i in self.quadrature_indices]
        imag = transform_bits_to_amplitude(quadrature_bits, scale)
        return complex(real, imag)

    def bits_from_symbol(self, symbol: complex) -> Tuple[int, ...]:
        """Transform bits (layout order) representing an exact constellation symbol."""
        scale = self.modulation.scale
        bits_per_dim = self.modulation.bits_per_dimension
        in_phase = amplitude_to_transform_bits(symbol.real, bits_per_dim, scale)
        if self.modulation.name == "BPSK":
            if abs(symbol.imag) > 1e-9:
                raise TransformError("BPSK symbols must be real-valued")
            return in_phase
        quadrature = amplitude_to_transform_bits(symbol.imag, bits_per_dim, scale)
        return in_phase + quadrature

    def gray_payload_bits(self, qubo_bits: Sequence[int]) -> Tuple[int, ...]:
        """Gray-coded payload bits of this user's detected symbol.

        These are the bits a real receiver would deliver to the MAC layer;
        they differ from the raw QUBO variables because the air interface
        Gray-codes the constellation.
        """
        qubo_bits = np.asarray(qubo_bits, dtype=int).ravel()
        in_phase_bits = [int(qubo_bits[i]) for i in self.in_phase_indices]
        payload: List[int] = list(transform_bits_to_gray_bits(in_phase_bits))
        if self.quadrature_indices:
            quadrature_bits = [int(qubo_bits[i]) for i in self.quadrature_indices]
            payload.extend(transform_bits_to_gray_bits(quadrature_bits))
        return tuple(payload)

    def transform_bits_from_payload(self, payload_bits: Sequence[int]) -> Tuple[int, ...]:
        """Invert :meth:`gray_payload_bits` for one user's payload bits."""
        payload_bits = list(payload_bits)
        if len(payload_bits) != self.bits_per_symbol:
            raise TransformError(
                f"expected {self.bits_per_symbol} payload bits, got {len(payload_bits)}"
            )
        if self.modulation.name == "BPSK":
            return gray_bits_to_transform_bits(payload_bits)
        half = self.bits_per_symbol // 2
        in_phase = gray_bits_to_transform_bits(payload_bits[:half])
        quadrature = gray_bits_to_transform_bits(payload_bits[half:])
        return in_phase + quadrature
