"""repro — hybrid classical-quantum computation structures for wireless systems.

A from-scratch reproduction of Kim, Venturelli & Jamieson, *Towards Hybrid
Classical-Quantum Computation Structures in Wirelessly-Networked Systems*
(HotNets 2020).  The library provides:

* a wireless PHY substrate (modulations, channels, MIMO link simulation) —
  :mod:`repro.wireless`;
* the QUBO/Ising substrate and the QuAMax MIMO-to-QUBO reduction —
  :mod:`repro.qubo`, :mod:`repro.transform`;
* classical solvers and detectors (greedy search, SA, tabu, ZF, MMSE, sphere
  decoders) — :mod:`repro.classical`;
* a software quantum-annealer simulator with forward / reverse /
  forward-reverse schedules, Chimera embedding and a device model —
  :mod:`repro.annealing`;
* the paper's hybrid GS + reverse-annealing solver, parameter sweeps and the
  Figure-2 pipeline simulator — :mod:`repro.hybrid`;
* the deadline-aware RAN serving subsystem (multi-user workloads, EDF/FIFO
  scheduling, heterogeneous backend pool, load studies) — :mod:`repro.serving`;
* the paper's metrics (ΔE%, success probability, TTS) — :mod:`repro.metrics`;
* runnable reproductions of every evaluation figure — :mod:`repro.experiments`.

Quickstart::

    from repro.wireless import MIMOConfig, simulate_transmission
    from repro.hybrid import HybridMIMODetector

    transmission = simulate_transmission(MIMOConfig(num_users=4, modulation="16-QAM"), rng=1)
    detector = HybridMIMODetector(num_reads=200)
    result = detector.detect(transmission.instance, rng=2)
    print(result.symbols, result.objective_value)
"""

from repro.exceptions import (
    ReproError,
    ConfigurationError,
    DimensionError,
    ModulationError,
    ScheduleError,
    EmbeddingError,
    SolverError,
    TransformError,
    PipelineError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "DimensionError",
    "ModulationError",
    "ScheduleError",
    "EmbeddingError",
    "SolverError",
    "TransformError",
    "PipelineError",
]
