"""Command-line entry point: run any paper experiment from a terminal.

Installed as ``repro-experiments``::

    repro-experiments fig3            # Figure 3  (QUBO simplification)
    repro-experiments fig6            # Figure 6  (delta-E% distributions)
    repro-experiments fig7            # Figure 7  (initial-state quality)
    repro-experiments fig8            # Figure 8  (p* and TTS vs s_p)
    repro-experiments headline        # Abstract's 2-10x comparison
    repro-experiments pipeline        # Figure 2  (pipelined processing)
    repro-experiments ablation        # initialiser ablation
    repro-experiments constraints     # Figure 4  (soft constraints)
    repro-experiments snr             # extension: BER vs SNR under AWGN
    repro-experiments pause           # extension: the power of pausing
    repro-experiments robustness      # extension: impairment robustness sweep
    repro-experiments serve           # serving layer: multi-user load sweep
    repro-experiments scenarios       # time-varying scenarios: static vs autoscaled
    repro-experiments network         # city-scale capacity placement on a topology
    repro-experiments all             # everything, in order
    repro-experiments ablate --spec study.toml   # declarative ablation/HPO study

``--paper-scale`` switches the configurations that support it to the paper's
full instance/read counts (slow); ``--quick`` selects the minimal smoke-test
configurations.  ``--batch-size N`` bounds how many QUBO instances the
experiments submit per batched annealer/solver call (the default submits each
experiment's natural instance group as one batch); results are identical for
every batch size thanks to per-instance child generators.

``--workers N`` shards the sweep-style experiments (fig6, fig8, snr,
robustness, serve, scenarios, network) across ``N`` processes — results are
bitwise-identical to the
serial run at any worker count.  Shard results are cached on disk under
``--cache-dir`` (default ``.repro-cache``) so a re-run with one changed
point recomputes only that point; ``--no-cache`` disables the cache.
Experiments without a sharded driver ignore all three flags.

``--telemetry[=DIR]`` records an execution trace (sim-time job spans, kernel
timings, cache counters) and exports ``trace.jsonl``, ``metrics.prom`` and
``summary.txt`` into DIR on exit — results are bitwise-identical with or
without it (see ``docs/telemetry.md``).  ``--verbose/-v`` and ``--quiet/-q``
control structured progress logging.

``ablate`` runs a declarative ablation/HPO study: ``--spec FILE`` names a
TOML or JSON study spec (see ``docs/ablation.md``), ``--workers``,
``--no-cache``/``--cache-dir`` and ``--telemetry`` apply as above, and the
tidy results table plus Pareto summary print to stdout while the per-study
JSON artifact lands at ``--output`` (default ``ablation_<study-name>.json``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys
from typing import Callable, Dict, List, Optional

from repro import telemetry
from repro.parallel import ResultCache
from repro.telemetry import exporters
from repro.telemetry.log import configure_logging, get_logger

from repro.experiments import (
    Figure3Config,
    Figure6Config,
    Figure7Config,
    Figure8Config,
    HeadlineConfig,
    InitializerAblationConfig,
    LoadStudyConfig,
    NetworkStudyConfig,
    PauseAblationConfig,
    ScenarioStudyConfig,
    PipelineStudyConfig,
    RobustnessStudyConfig,
    SNRStudyConfig,
    SoftConstraintConfig,
    format_figure3_table,
    format_figure6_table,
    format_figure7_table,
    format_figure8_table,
    format_headline_report,
    format_initializer_table,
    format_load_study_table,
    format_network_table,
    format_pause_table,
    format_pipeline_table,
    format_robustness_table,
    format_scenario_table,
    format_snr_table,
    format_soft_constraint_table,
    run_figure3,
    run_figure6,
    run_figure7,
    run_figure8,
    run_headline,
    run_initializer_ablation,
    run_load_study,
    run_network_study,
    run_pause_ablation,
    run_pipeline_study,
    run_robustness_study,
    run_scenario_study,
    run_snr_study,
    run_soft_constraint_study,
)

__all__ = ["main"]

_log = get_logger(__name__)

#: Default output directory of ``--telemetry`` when no path is given.
DEFAULT_TELEMETRY_DIR = "telemetry-out"


def _select(config_class, scale: str, batch_size: Optional[int] = None):
    """Pick the configuration variant for the requested scale.

    ``batch_size`` is applied to configurations that expose a ``batch_size``
    field (fig6, snr, pipeline); others submit their natural batch and ignore
    the flag.
    """
    if scale == "paper" and hasattr(config_class, "paper_scale"):
        config = config_class.paper_scale()
    elif scale == "quick" and hasattr(config_class, "quick"):
        config = config_class.quick()
    else:
        config = config_class()
    if batch_size is not None and any(
        field.name == "batch_size" for field in dataclasses.fields(config)
    ):
        config = dataclasses.replace(config, batch_size=batch_size)
    return config


def _run_fig3(scale, batch_size, workers, cache) -> str:
    return format_figure3_table(run_figure3(_select(Figure3Config, scale, batch_size)))


def _run_fig6(scale, batch_size, workers, cache) -> str:
    return format_figure6_table(
        run_figure6(_select(Figure6Config, scale, batch_size), workers=workers, cache=cache)
    )


def _run_fig7(scale, batch_size, workers, cache) -> str:
    return format_figure7_table(run_figure7(_select(Figure7Config, scale, batch_size)))


def _run_fig8(scale, batch_size, workers, cache) -> str:
    return format_figure8_table(
        run_figure8(_select(Figure8Config, scale, batch_size), workers=workers, cache=cache)
    )


def _run_headline(scale, batch_size, workers, cache) -> str:
    return format_headline_report(run_headline(_select(HeadlineConfig, scale, batch_size)))


def _run_pipeline(scale, batch_size, workers, cache) -> str:
    return format_pipeline_table(
        run_pipeline_study(_select(PipelineStudyConfig, scale, batch_size))
    )


def _run_ablation(scale, batch_size, workers, cache) -> str:
    return format_initializer_table(
        run_initializer_ablation(_select(InitializerAblationConfig, scale, batch_size))
    )


def _run_constraints(scale, batch_size, workers, cache) -> str:
    return format_soft_constraint_table(
        run_soft_constraint_study(_select(SoftConstraintConfig, scale, batch_size))
    )


def _run_snr(scale, batch_size, workers, cache) -> str:
    return format_snr_table(
        run_snr_study(_select(SNRStudyConfig, scale, batch_size), workers=workers, cache=cache)
    )


def _run_pause(scale, batch_size, workers, cache) -> str:
    return format_pause_table(
        run_pause_ablation(_select(PauseAblationConfig, scale, batch_size))
    )


def _run_robustness(scale, batch_size, workers, cache) -> str:
    return format_robustness_table(
        run_robustness_study(
            _select(RobustnessStudyConfig, scale, batch_size),
            workers=workers,
            cache=cache,
        )
    )


def _run_serve(scale, batch_size, workers, cache) -> str:
    config = _select(LoadStudyConfig, scale)
    if batch_size is not None:
        config = dataclasses.replace(config, max_batch_size=batch_size)
    return format_load_study_table(run_load_study(config, workers=workers, cache=cache))


def _run_scenarios(scale, batch_size, workers, cache) -> str:
    config = _select(ScenarioStudyConfig, scale)
    if batch_size is not None:
        config = dataclasses.replace(config, max_batch_size=batch_size)
    return format_scenario_table(run_scenario_study(config, workers=workers, cache=cache))


def _run_network(scale, batch_size, workers, cache) -> str:
    config = _select(NetworkStudyConfig, scale)
    return format_network_table(run_network_study(config, workers=workers, cache=cache))


def _run_ablate(spec_path: str, output: Optional[str], workers, cache) -> str:
    """Run one declarative study: print its table, write its JSON artifact."""
    from repro.ablation import format_study_table, load_spec, run_study

    spec = load_spec(spec_path)
    result = run_study(spec, workers=workers, cache=cache)
    if output is None:
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", spec.name)
        output = f"ablation_{slug}.json"
    artifact = pathlib.Path(output)
    if artifact.parent != pathlib.Path("."):
        artifact.parent.mkdir(parents=True, exist_ok=True)
    artifact.write_text(
        json.dumps(result.payload(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    _log.info("ablation.artifact_written", path=str(artifact), study=spec.name)
    return format_study_table(result) + f"\nArtifact: {artifact}"


_ExperimentRunner = Callable[[str, Optional[int], Optional[int], Optional[ResultCache]], str]
_EXPERIMENTS: Dict[str, _ExperimentRunner] = {
    "fig3": _run_fig3,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "headline": _run_headline,
    "pipeline": _run_pipeline,
    "ablation": _run_ablation,
    "constraints": _run_constraints,
    "snr": _run_snr,
    "pause": _run_pause,
    "robustness": _run_robustness,
    "serve": _run_serve,
    "scenarios": _run_scenarios,
    "network": _run_network,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation figures of the HotNets 2020 hybrid "
        "classical-quantum wireless paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "ablate"],
        help="which experiment to run ('ablate' runs a declarative study "
        "from --spec and is not part of 'all')",
    )
    parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="ablation study spec, a .toml or .json file (required by, and "
        "only valid with, the 'ablate' subcommand; see docs/ablation.md)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="where 'ablate' writes the per-study JSON artifact "
        "(default: ablation_<study-name>.json in the working directory)",
    )
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full instance and read counts (slow)",
    )
    scale.add_argument(
        "--quick",
        action="store_true",
        help="use the minimal smoke-test configurations",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="QUBO instances per batched annealer/solver submission (default: "
        "each experiment's natural instance group as one batch); results are "
        "identical for every batch size",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard the sweep-style experiments (fig6, fig8, snr, robustness, "
        "serve, scenarios, network) across N processes; results are bitwise-identical "
        "to the serial run at any worker count (default: serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk shard-result cache (every point recomputes)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        metavar="DIR",
        help="directory of the content-addressed shard-result cache "
        "(default: .repro-cache)",
    )
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const=DEFAULT_TELEMETRY_DIR,
        default=None,
        metavar="DIR",
        help="record an execution trace and metrics, exporting trace.jsonl, "
        "metrics.prom and summary.txt into DIR (default: "
        f"{DEFAULT_TELEMETRY_DIR}); results are bitwise-identical with or "
        "without telemetry",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="count",
        default=0,
        help="increase log verbosity (-v: progress, -vv: per-shard detail)",
    )
    parser.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="only log errors",
    )
    return parser


def _export_telemetry(session: telemetry.TelemetrySession, directory: str) -> None:
    """Write the run's trace, metrics snapshot and summary into ``directory``."""
    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    records = exporters.write_trace_jsonl(session.tracer, out / "trace.jsonl")
    metrics_text = exporters.prometheus_text(session.registry)
    (out / "metrics.prom").write_text(metrics_text, encoding="utf-8")
    summary = exporters.format_run_summary(
        [exporters.span_to_record(span) for span in session.tracer.records],
        metrics_text=metrics_text,
    )
    (out / "summary.txt").write_text(summary, encoding="utf-8")
    _log.info(
        "telemetry.exported",
        directory=str(out),
        records=records,
        dropped=session.tracer.dropped,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.batch_size is not None and arguments.batch_size <= 0:
        parser.error(f"--batch-size must be positive, got {arguments.batch_size}")
    if arguments.workers is not None and arguments.workers < 1:
        parser.error(f"--workers must be at least 1, got {arguments.workers}")
    if arguments.quiet and arguments.verbose:
        parser.error("--quiet and --verbose are mutually exclusive")
    if arguments.experiment == "ablate" and arguments.spec is None:
        parser.error("ablate requires --spec FILE (a .toml or .json study spec)")
    if arguments.experiment != "ablate" and arguments.spec is not None:
        parser.error("--spec is only valid with the 'ablate' subcommand")
    if arguments.experiment != "ablate" and arguments.output is not None:
        parser.error("--output is only valid with the 'ablate' subcommand")
    scale = "paper" if arguments.paper_scale else ("quick" if arguments.quick else "default")
    cache = None if arguments.no_cache else ResultCache(arguments.cache_dir)
    configure_logging(-1 if arguments.quiet else arguments.verbose)

    session = telemetry.enable() if arguments.telemetry is not None else None
    names = sorted(_EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    try:
        # Spec loading happens inside the try so a bad spec still exports
        # whatever telemetry was recorded before the failure.
        if arguments.experiment == "ablate":
            print(_run_ablate(arguments.spec, arguments.output, arguments.workers, cache))
            print()
        else:
            for name in names:
                print(_EXPERIMENTS[name](scale, arguments.batch_size, arguments.workers, cache))
                print()
    finally:
        # Export whatever was recorded even when an experiment raises —
        # a partial trace is exactly what you want when debugging a failure.
        if session is not None:
            _export_telemetry(session, arguments.telemetry)
            telemetry.disable()
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
