"""Command-line entry point: run any paper experiment from a terminal.

Installed as ``repro-experiments``::

    repro-experiments fig3            # Figure 3  (QUBO simplification)
    repro-experiments fig6            # Figure 6  (delta-E% distributions)
    repro-experiments fig7            # Figure 7  (initial-state quality)
    repro-experiments fig8            # Figure 8  (p* and TTS vs s_p)
    repro-experiments headline        # Abstract's 2-10x comparison
    repro-experiments pipeline        # Figure 2  (pipelined processing)
    repro-experiments ablation        # initialiser ablation
    repro-experiments constraints     # Figure 4  (soft constraints)
    repro-experiments snr             # extension: BER vs SNR under AWGN
    repro-experiments pause           # extension: the power of pausing
    repro-experiments robustness      # extension: impairment robustness sweep
    repro-experiments serve           # serving layer: multi-user load sweep
    repro-experiments scenarios       # time-varying scenarios: static vs autoscaled
    repro-experiments network         # city-scale capacity placement on a topology
    repro-experiments qos             # QoS classes: classless vs class-aware serving
    repro-experiments all             # everything, in order
    repro-experiments ablate --spec study.toml   # declarative ablation/HPO study

Every experiment is an argparse subcommand built from two shared parent
parsers, so the run-shaping surface is identical everywhere.  The *scale*
options select the configuration variant: ``--paper-scale`` switches the
configurations that support it to the paper's full instance/read counts
(slow); ``--quick`` selects the minimal smoke-test configurations.
``--batch-size N`` bounds how many QUBO instances the experiments submit per
batched annealer/solver call (the default submits each experiment's natural
instance group as one batch); results are identical for every batch size
thanks to per-instance child generators.

The *execution* options shape how work runs without changing results.
``--workers N`` shards the sweep-style experiments (fig6, fig8, snr,
robustness, serve, scenarios, network, qos) across ``N`` processes — results
are bitwise-identical to the serial run at any worker count.  Shard results
are cached on disk under ``--cache-dir`` (default ``.repro-cache``) so a
re-run with one changed point recomputes only that point; ``--no-cache``
disables the cache.  Experiments without a sharded driver ignore all three
flags.

``--telemetry[=DIR]`` records an execution trace (sim-time job spans, kernel
timings, cache counters) and exports ``trace.jsonl``, ``metrics.prom`` and
``summary.txt`` into DIR on exit — results are bitwise-identical with or
without it (see ``docs/telemetry.md``).  ``--verbose/-v`` and ``--quiet/-q``
control structured progress logging.

Parsed options land in one :class:`CommonRunOptions` value consumed by every
experiment runner, so adding a subcommand means writing one runner function
and one table entry — never re-wiring flags.

``ablate`` runs a declarative ablation/HPO study: ``--spec FILE`` names a
TOML or JSON study spec (see ``docs/ablation.md``), the execution options
apply as above, and the tidy results table plus Pareto summary print to
stdout while the per-study JSON artifact lands at ``--output`` (default
``ablation_<study-name>.json``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.parallel import ResultCache
from repro.telemetry import exporters
from repro.telemetry.log import configure_logging, get_logger

from repro.experiments import (
    Figure3Config,
    Figure6Config,
    Figure7Config,
    Figure8Config,
    HeadlineConfig,
    InitializerAblationConfig,
    LoadStudyConfig,
    NetworkStudyConfig,
    PauseAblationConfig,
    QoSStudyConfig,
    ScenarioStudyConfig,
    PipelineStudyConfig,
    RobustnessStudyConfig,
    SNRStudyConfig,
    SoftConstraintConfig,
    format_figure3_table,
    format_figure6_table,
    format_figure7_table,
    format_figure8_table,
    format_headline_report,
    format_initializer_table,
    format_load_study_table,
    format_network_table,
    format_pause_table,
    format_pipeline_table,
    format_qos_table,
    format_robustness_table,
    format_scenario_table,
    format_snr_table,
    format_soft_constraint_table,
    run_figure3,
    run_figure6,
    run_figure7,
    run_figure8,
    run_headline,
    run_initializer_ablation,
    run_load_study,
    run_network_study,
    run_pause_ablation,
    run_pipeline_study,
    run_qos_study,
    run_robustness_study,
    run_scenario_study,
    run_snr_study,
    run_soft_constraint_study,
)

__all__ = ["CommonRunOptions", "main"]

_log = get_logger(__name__)

#: Default output directory of ``--telemetry`` when no path is given.
DEFAULT_TELEMETRY_DIR = "telemetry-out"


@dataclasses.dataclass(frozen=True)
class CommonRunOptions:
    """The run-shaping options shared by every experiment subcommand.

    Runners receive one of these instead of a positional flag tuple, so the
    CLI surface and the runner signatures cannot drift apart: the shared
    parent parsers produce exactly these fields.
    """

    scale: str = "default"
    batch_size: Optional[int] = None
    workers: Optional[int] = None
    cache: Optional[ResultCache] = None

    @classmethod
    def from_arguments(cls, arguments: argparse.Namespace) -> "CommonRunOptions":
        """Collapse the parsed flags into one options value."""
        scale = "paper" if arguments.paper_scale else ("quick" if arguments.quick else "default")
        cache = None if arguments.no_cache else ResultCache(arguments.cache_dir)
        return cls(
            scale=scale,
            batch_size=arguments.batch_size,
            workers=arguments.workers,
            cache=cache,
        )


def _select(config_class, scale: str, batch_size: Optional[int] = None):
    """Pick the configuration variant for the requested scale.

    ``batch_size`` is applied to configurations that expose a ``batch_size``
    field (fig6, snr, pipeline); others submit their natural batch and ignore
    the flag.
    """
    if scale == "paper" and hasattr(config_class, "paper_scale"):
        config = config_class.paper_scale()
    elif scale == "quick" and hasattr(config_class, "quick"):
        config = config_class.quick()
    else:
        config = config_class()
    if batch_size is not None and any(
        field.name == "batch_size" for field in dataclasses.fields(config)
    ):
        config = dataclasses.replace(config, batch_size=batch_size)
    return config


def _select_serving(config_class, options: CommonRunOptions):
    """Serving configs map ``--batch-size`` onto ``max_batch_size``."""
    config = _select(config_class, options.scale)
    if options.batch_size is not None:
        config = dataclasses.replace(config, max_batch_size=options.batch_size)
    return config


def _run_fig3(options: CommonRunOptions) -> str:
    return format_figure3_table(
        run_figure3(_select(Figure3Config, options.scale, options.batch_size))
    )


def _run_fig6(options: CommonRunOptions) -> str:
    return format_figure6_table(
        run_figure6(
            _select(Figure6Config, options.scale, options.batch_size),
            workers=options.workers,
            cache=options.cache,
        )
    )


def _run_fig7(options: CommonRunOptions) -> str:
    return format_figure7_table(
        run_figure7(_select(Figure7Config, options.scale, options.batch_size))
    )


def _run_fig8(options: CommonRunOptions) -> str:
    return format_figure8_table(
        run_figure8(
            _select(Figure8Config, options.scale, options.batch_size),
            workers=options.workers,
            cache=options.cache,
        )
    )


def _run_headline(options: CommonRunOptions) -> str:
    return format_headline_report(
        run_headline(_select(HeadlineConfig, options.scale, options.batch_size))
    )


def _run_pipeline(options: CommonRunOptions) -> str:
    return format_pipeline_table(
        run_pipeline_study(_select(PipelineStudyConfig, options.scale, options.batch_size))
    )


def _run_ablation(options: CommonRunOptions) -> str:
    return format_initializer_table(
        run_initializer_ablation(
            _select(InitializerAblationConfig, options.scale, options.batch_size)
        )
    )


def _run_constraints(options: CommonRunOptions) -> str:
    return format_soft_constraint_table(
        run_soft_constraint_study(_select(SoftConstraintConfig, options.scale, options.batch_size))
    )


def _run_snr(options: CommonRunOptions) -> str:
    return format_snr_table(
        run_snr_study(
            _select(SNRStudyConfig, options.scale, options.batch_size),
            workers=options.workers,
            cache=options.cache,
        )
    )


def _run_pause(options: CommonRunOptions) -> str:
    return format_pause_table(
        run_pause_ablation(_select(PauseAblationConfig, options.scale, options.batch_size))
    )


def _run_robustness(options: CommonRunOptions) -> str:
    return format_robustness_table(
        run_robustness_study(
            _select(RobustnessStudyConfig, options.scale, options.batch_size),
            workers=options.workers,
            cache=options.cache,
        )
    )


def _run_serve(options: CommonRunOptions) -> str:
    return format_load_study_table(
        run_load_study(
            _select_serving(LoadStudyConfig, options),
            workers=options.workers,
            cache=options.cache,
        )
    )


def _run_scenarios(options: CommonRunOptions) -> str:
    return format_scenario_table(
        run_scenario_study(
            _select_serving(ScenarioStudyConfig, options),
            workers=options.workers,
            cache=options.cache,
        )
    )


def _run_network(options: CommonRunOptions) -> str:
    return format_network_table(
        run_network_study(
            _select(NetworkStudyConfig, options.scale),
            workers=options.workers,
            cache=options.cache,
        )
    )


def _run_qos(options: CommonRunOptions) -> str:
    return format_qos_table(
        run_qos_study(
            _select_serving(QoSStudyConfig, options),
            workers=options.workers,
            cache=options.cache,
        )
    )


def _run_ablate(spec_path: str, output: Optional[str], options: CommonRunOptions) -> str:
    """Run one declarative study: print its table, write its JSON artifact."""
    from repro.ablation import format_study_table, load_spec, run_study

    spec = load_spec(spec_path)
    result = run_study(spec, workers=options.workers, cache=options.cache)
    if output is None:
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", spec.name)
        output = f"ablation_{slug}.json"
    artifact = pathlib.Path(output)
    if artifact.parent != pathlib.Path("."):
        artifact.parent.mkdir(parents=True, exist_ok=True)
    artifact.write_text(
        json.dumps(result.payload(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    _log.info("ablation.artifact_written", path=str(artifact), study=spec.name)
    return format_study_table(result) + f"\nArtifact: {artifact}"


_ExperimentRunner = Callable[[CommonRunOptions], str]

#: Subcommand name -> (runner, one-line summary shown in ``--help``).
_EXPERIMENTS: Dict[str, Tuple[_ExperimentRunner, str]] = {
    "fig3": (_run_fig3, "Figure 3 — QUBO simplification by variable prefixing"),
    "fig6": (_run_fig6, "Figure 6 — delta-E% distributions of FA / RA"),
    "fig7": (_run_fig7, "Figure 7 — RA performance vs initial-state quality"),
    "fig8": (_run_fig8, "Figure 8 — success probability and TTS vs s_p"),
    "headline": (_run_headline, "the abstract's 2-10x RA vs FA comparison"),
    "pipeline": (_run_pipeline, "Figure 2 — pipelined classical/quantum processing"),
    "ablation": (_run_ablation, "initialiser-quality ablation (GS/ZF/MMSE/sphere)"),
    "constraints": (_run_constraints, "Figure 4 — soft-information constraints"),
    "snr": (_run_snr, "extension — BER vs SNR under AWGN"),
    "pause": (_run_pause, "extension — the power of pausing"),
    "robustness": (_run_robustness, "extension — impairment robustness sweep"),
    "serve": (_run_serve, "serving layer — deadline-miss rate vs offered load"),
    "scenarios": (_run_scenarios, "time-varying scenarios — static vs autoscaled"),
    "network": (_run_network, "city-scale capacity placement on a topology"),
    "qos": (_run_qos, "QoS classes — classless vs class-aware serving with handover"),
}


def _scale_options() -> argparse.ArgumentParser:
    """Shared parent parser: configuration-scale selection."""
    parent = argparse.ArgumentParser(add_help=False)
    scale = parent.add_mutually_exclusive_group()
    scale.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full instance and read counts (slow)",
    )
    scale.add_argument(
        "--quick",
        action="store_true",
        help="use the minimal smoke-test configurations",
    )
    parent.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="QUBO instances per batched annealer/solver submission (default: "
        "each experiment's natural instance group as one batch); results are "
        "identical for every batch size",
    )
    return parent


def _execution_options() -> argparse.ArgumentParser:
    """Shared parent parser: sharding, caching, telemetry and verbosity."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard the sweep-style experiments (fig6, fig8, snr, robustness, "
        "serve, scenarios, network, qos) across N processes; results are "
        "bitwise-identical to the serial run at any worker count (default: serial)",
    )
    parent.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk shard-result cache (every point recomputes)",
    )
    parent.add_argument(
        "--cache-dir",
        default=".repro-cache",
        metavar="DIR",
        help="directory of the content-addressed shard-result cache "
        "(default: .repro-cache)",
    )
    parent.add_argument(
        "--telemetry",
        nargs="?",
        const=DEFAULT_TELEMETRY_DIR,
        default=None,
        metavar="DIR",
        help="record an execution trace and metrics, exporting trace.jsonl, "
        "metrics.prom and summary.txt into DIR (default: "
        f"{DEFAULT_TELEMETRY_DIR}); results are bitwise-identical with or "
        "without telemetry",
    )
    parent.add_argument(
        "--verbose",
        "-v",
        action="count",
        default=0,
        help="increase log verbosity (-v: progress, -vv: per-shard detail)",
    )
    parent.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="only log errors",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing).

    One subparser per experiment, all built from the same two parent parsers
    (:func:`_scale_options` and :func:`_execution_options`), plus ``all`` and
    the spec-driven ``ablate``.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation figures of the HotNets 2020 hybrid "
        "classical-quantum wireless paper.",
    )
    # Flags that only some subcommands define still need namespace defaults
    # so main() can read them unconditionally.
    parser.set_defaults(spec=None, output=None, paper_scale=False, quick=False, batch_size=None)
    scale = _scale_options()
    execution = _execution_options()
    subparsers = parser.add_subparsers(
        dest="experiment",
        required=True,
        metavar="experiment",
        help="which experiment to run ('ablate' runs a declarative study "
        "from --spec and is not part of 'all')",
    )
    for name, (_, summary) in sorted(_EXPERIMENTS.items()):
        subparsers.add_parser(
            name, parents=[scale, execution], help=summary, description=summary
        )
    subparsers.add_parser(
        "all",
        parents=[scale, execution],
        help="every experiment above, in order",
        description="run every experiment subcommand in name order",
    )
    ablate = subparsers.add_parser(
        "ablate",
        parents=[execution],
        help="declarative ablation/HPO study from --spec (see docs/ablation.md)",
        description="run a declarative ablation/HPO study from a TOML/JSON spec",
    )
    ablate.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="ablation study spec, a .toml or .json file (required; see "
        "docs/ablation.md)",
    )
    ablate.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="where the per-study JSON artifact is written "
        "(default: ablation_<study-name>.json in the working directory)",
    )
    return parser


def _export_telemetry(session: telemetry.TelemetrySession, directory: str) -> None:
    """Write the run's trace, metrics snapshot and summary into ``directory``."""
    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    records = exporters.write_trace_jsonl(session.tracer, out / "trace.jsonl")
    metrics_text = exporters.prometheus_text(session.registry)
    (out / "metrics.prom").write_text(metrics_text, encoding="utf-8")
    summary = exporters.format_run_summary(
        [exporters.span_to_record(span) for span in session.tracer.records],
        metrics_text=metrics_text,
    )
    (out / "summary.txt").write_text(summary, encoding="utf-8")
    _log.info(
        "telemetry.exported",
        directory=str(out),
        records=records,
        dropped=session.tracer.dropped,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.batch_size is not None and arguments.batch_size <= 0:
        parser.error(f"--batch-size must be positive, got {arguments.batch_size}")
    if arguments.workers is not None and arguments.workers < 1:
        parser.error(f"--workers must be at least 1, got {arguments.workers}")
    if arguments.quiet and arguments.verbose:
        parser.error("--quiet and --verbose are mutually exclusive")
    if arguments.experiment == "ablate" and arguments.spec is None:
        parser.error("ablate requires --spec FILE (a .toml or .json study spec)")
    options = CommonRunOptions.from_arguments(arguments)
    configure_logging(-1 if arguments.quiet else arguments.verbose)

    session = telemetry.enable() if arguments.telemetry is not None else None
    names = sorted(_EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    try:
        # Spec loading happens inside the try so a bad spec still exports
        # whatever telemetry was recorded before the failure.
        if arguments.experiment == "ablate":
            print(_run_ablate(arguments.spec, arguments.output, options))
            print()
        else:
            for name in names:
                runner, _ = _EXPERIMENTS[name]
                print(runner(options))
                print()
    finally:
        # Export whatever was recorded even when an experiment raises —
        # a partial trace is exactly what you want when debugging a failure.
        if session is not None:
            _export_telemetry(session, arguments.telemetry)
            telemetry.disable()
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
